"""Crash-recovery parity and graceful degradation for serving shards.

The headline guarantee: a shard SIGKILLed mid-stream and resumed from
its last checkpoint produces a report whose parity surface is
byte-identical to a never-failed run.  Plus the degradation ladder:
model failures step exactly one rung per failure and decisions keep
flowing at every rung.
"""

import numpy as np
import pytest

from repro.framework import (
    FaultPlan,
    FaultSpec,
    PassthroughQueueService,
    QSSFService,
    Supervision,
    SupervisionLog,
    fork_available,
)
from repro.serve import ShardTask, build_shard, serve_clusters

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires os.fork")

_TASK = dict(history_days=14, stream_days=1.0, max_jobs=400)

FAST_SUP = Supervision(
    timeout_s=120.0, max_retries=2, backoff_base_s=0.001, backoff_cap_s=0.01,
    poll_interval_s=0.005,
)


def _config(**overrides):
    from repro.experiments.serving import smoke_serve_config

    cfg = smoke_serve_config()
    if overrides:
        from dataclasses import replace

        cfg = replace(cfg, **overrides)
    return cfg


@pytest.fixture(scope="module")
def task():
    return ShardTask(cluster="Venus", config=_config(), **_TASK)


@pytest.fixture(scope="module")
def baseline(task):
    server, stream = build_shard(task)
    return server.run(stream)


class TestCheckpointResume:
    def test_resume_parity_from_every_checkpoint(self, task, baseline):
        ckpts = []
        server, stream = build_shard(task)
        full = server.run(stream, checkpoint_every=40, checkpoint_sink=ckpts.append)
        assert full.parity_bytes() == baseline.parity_bytes()
        assert len(ckpts) >= 3
        assert [c.cursor for c in ckpts] == [40 * (i + 1) for i in range(len(ckpts))]
        for pick in (0, len(ckpts) // 2, -1):
            server2, stream2 = build_shard(task)
            resumed = server2.run(stream2, resume=ckpts[pick])
            assert resumed.parity_bytes() == baseline.parity_bytes(), (
                f"resume from checkpoint {pick} broke parity"
            )

    def test_checkpoint_cluster_mismatch_rejected(self, task):
        ckpts = []
        server, stream = build_shard(task)
        server.run(stream, checkpoint_every=40, checkpoint_sink=ckpts.append)
        other_task = ShardTask(cluster="Saturn", config=_config(), **_TASK)
        server2, stream2 = build_shard(other_task)
        with pytest.raises(ValueError, match="checkpoint is for shard"):
            server2.run(stream2, resume=ckpts[0])


@needs_fork
class TestSigkillRecovery:
    def test_sigkill_mid_stream_parity(self, baseline):
        """The acceptance test: kill at batch 130, resume, byte-compare."""
        plan = FaultPlan(
            seed=7, faults=(FaultSpec(key="Venus", kind="crash", at=130),)
        )
        log = SupervisionLog()
        (recovered,) = serve_clusters(
            ("Venus",), config=_config(), jobs=1, **_TASK,
            supervised=True, supervision=FAST_SUP, fault_plan=plan,
            checkpoint_every=50, log=log,
        )
        assert recovered.parity_bytes() == baseline.parity_bytes()
        assert log.events == [("Venus", 0, "crash"), ("Venus", 1, "ok")]
        assert recovered.retries == 1
        assert recovered.as_dict()["retries"] == 1

    def test_same_plan_same_seed_identical_fault_sequence(self):
        plan = FaultPlan(
            seed=7, faults=(FaultSpec(key="Venus", kind="crash", at=130),)
        )
        runs = []
        for _ in range(2):
            log = SupervisionLog()
            (report,) = serve_clusters(
                ("Venus",), config=_config(), jobs=1, **_TASK,
                supervised=True, supervision=FAST_SUP, fault_plan=plan,
                checkpoint_every=50, log=log,
            )
            runs.append((log.events, report.parity_bytes()))
        assert runs[0] == runs[1]


class TestDegradationLadder:
    def test_one_rung_per_decision_failure(self, task, baseline):
        """Each ordering failure steps exactly one rung; decisions keep
        flowing and every degraded decision is counted."""
        server, stream = build_shard(task)
        svc = server.orchestrator.service("qssf")
        fails = {"n": 0}
        orig_act = svc.act

        def flaky_act(state):
            if fails["n"] < 1:
                fails["n"] += 1
                raise RuntimeError("injected model failure")
            return orig_act(state)

        svc.act = flaky_act
        report = server.run(stream)
        assert report.degraded["qssf_rung"] == 1  # exactly one rung
        assert report.degraded["qssf_failures"] == 1
        assert report.degraded["qssf_decisions"] > 0  # kept deciding
        # every submit batch still produced an ordering
        assert report.qssf_batches == baseline.qssf_batches
        assert report.qssf_decisions == baseline.qssf_decisions

    def test_ladder_steps_in_order_and_sticks(self, task):
        server, _ = build_shard(task)
        assert server._qssf_rung == 0
        server._degrade_qssf()
        assert server._qssf_rung == 1
        assert isinstance(server.orchestrator.service("qssf"), QSSFService)
        assert server.orchestrator.service("qssf").refit_mode == "scratch"
        server._degrade_qssf()
        assert server._qssf_rung == 2
        svc = server.orchestrator.service("qssf")
        assert isinstance(svc, QSSFService) and svc.lam == 1.0
        server._degrade_qssf()
        assert server._qssf_rung == 3
        assert isinstance(
            server.orchestrator.service("qssf"), PassthroughQueueService
        )
        server._degrade_qssf()  # beyond the last rung: sticks
        assert server._qssf_rung == 3

    def test_fifo_passthrough_still_orders(self, task, baseline):
        """Even at the last rung the stream is served to exhaustion."""
        server, stream = build_shard(task)
        for _ in range(3):
            server._degrade_qssf()
        report = server.run(stream)
        assert report.qssf_batches == baseline.qssf_batches
        assert report.events == baseline.events
        assert report.degraded["qssf_rung"] == 3
        assert report.degraded["qssf_decisions"] == report.qssf_decisions

    def test_refit_failure_degrades_not_crashes(self, monkeypatch):
        """A raising incremental refit mid-stream downgrades the service
        instead of killing the shard; the pending buffer survives so the
        next observation retries at the new rung."""
        cfg = _config(
            lam=0.5,
            qssf_gbdt=None,
            update_interval_s=3_600.0,  # refits fire every stream-hour
            update_max_buffered=50,
        )
        task = ShardTask(cluster="Venus", config=cfg, **_TASK)
        server, stream = build_shard(task)
        calls = {"n": 0}
        orig = QSSFService.apply_update

        def flaky_update(self, update):
            if calls["n"] < 1:
                calls["n"] += 1
                raise RuntimeError("injected refit failure")
            return orig(self, update)

        monkeypatch.setattr(QSSFService, "apply_update", flaky_update)
        report = server.run(stream)
        assert report.degraded["refit_failures"] == 1
        assert report.degraded["qssf_rung"] == 1
        assert report.events > 0
        # scratch refits took over after the rung step
        assert report.refits["qssf"]["refits"] > 0

    def test_ces_failure_degrades_to_always_on(self, task, baseline):
        server, stream = build_shard(task)
        svc = server.orchestrator.service("ces")

        def broken_predict(*a, **k):
            raise RuntimeError("forecast model lost")

        svc.forecaster.predict_at = broken_predict
        report = server.run(stream)
        assert report.degraded["ces_rung"] == 1
        # every sample after the failure was a degraded (always-on) step
        assert report.degraded["ces_steps"] == report.node_samples
        assert report.node_samples == baseline.node_samples
        # always-on forecasts keep the controller from parking anything
        assert report.ces_summary["avg_parked"] <= baseline.ces_summary["avg_parked"]


class TestAggregatedFaultTelemetry:
    def test_rollup_counts_degraded_and_retries(self, task):
        from repro.serve import aggregate_reports

        server, stream = build_shard(task)
        for _ in range(2):
            server._degrade_qssf()
        report = server.run(stream)
        report.retries = 3
        agg = aggregate_reports([report])
        assert agg["retries"] == 3
        assert agg["degraded"]["qssf_rung"] == 2
        assert agg["degraded"]["qssf_decisions"] == report.qssf_decisions
