"""Tests for distribution primitives and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    Categorical,
    EmpiricalCDF,
    LogNormal,
    LogNormalMixture,
    mae,
    mape,
    powerlaw_weights,
    quantile_abs_error,
    r2_score,
    rmse,
    smape,
)


class TestEmpiricalCDF:
    def test_basic(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(2.0) == 0.5
        assert cdf(100.0) == 1.0

    def test_vectorized(self):
        cdf = EmpiricalCDF([1.0, 2.0])
        np.testing.assert_allclose(cdf(np.array([1.0, 1.5, 2.0])), [0.5, 0.5, 1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_median_mean(self):
        cdf = EmpiricalCDF([1.0, 3.0])
        assert cdf.median() == 2.0
        assert cdf.mean() == 2.0

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        cdf = EmpiricalCDF(rng.lognormal(3, 2, size=500))
        xs, ys = cdf.curve(100)
        assert np.all(np.diff(xs) > 0)
        assert np.all(np.diff(ys) >= 0)
        assert ys[-1] == pytest.approx(1.0)

    def test_quantile_inverts(self):
        cdf = EmpiricalCDF(np.arange(1, 101, dtype=float))
        assert cdf.quantile(0.5) == pytest.approx(50.5)


class TestSamplers:
    def test_lognormal_median(self):
        rng = np.random.default_rng(0)
        s = LogNormal(median=100.0, sigma=1.0).sample(rng, 40_000)
        assert np.median(s) == pytest.approx(100.0, rel=0.05)

    def test_lognormal_truncation(self):
        rng = np.random.default_rng(0)
        s = LogNormal(median=100.0, sigma=2.0, low=10.0, high=1000.0).sample(rng, 5000)
        assert s.min() >= 10.0 and s.max() <= 1000.0

    def test_mixture_weights_validate(self):
        with pytest.raises(ValueError, match="sum to 1"):
            LogNormalMixture((LogNormal(1, 1), LogNormal(2, 1)), (0.5, 0.6))

    def test_mixture_component_count_validates(self):
        with pytest.raises(ValueError, match="align"):
            LogNormalMixture((LogNormal(1, 1),), (0.5, 0.5))

    def test_mixture_sampling_is_bimodal(self):
        rng = np.random.default_rng(0)
        mix = LogNormalMixture(
            (LogNormal(1.0, 0.1), LogNormal(10_000.0, 0.1)), (0.5, 0.5)
        )
        s = mix.sample(rng, 4000)
        frac_small = np.mean(s < 100.0)
        assert 0.4 < frac_small < 0.6

    def test_categorical(self):
        rng = np.random.default_rng(0)
        cat = Categorical(values=(1, 2, 8), probs=(0.6, 0.3, 0.1))
        s = cat.sample(rng, 20_000)
        assert np.mean(s == 1) == pytest.approx(0.6, abs=0.02)
        assert cat.prob_of(8) == 0.1
        assert cat.prob_of(99) == 0.0

    def test_categorical_validates(self):
        with pytest.raises(ValueError):
            Categorical(values=(1, 2), probs=(0.9, 0.2))

    def test_powerlaw_weights(self):
        w = powerlaw_weights(100, alpha=1.5)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) <= 0)  # unshuffled is descending
        # heavy head: top 5% of 100 users hold a large share
        assert w[:5].sum() > 0.4

    def test_powerlaw_invalid(self):
        with pytest.raises(ValueError):
            powerlaw_weights(0, 1.0)


class TestMetrics:
    def test_smape_perfect(self):
        assert smape([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_smape_symmetric(self):
        a = smape([100.0], [110.0])
        b = smape([110.0], [100.0])
        assert a == pytest.approx(b)

    def test_smape_zero_pairs_ok(self):
        assert smape([0.0, 1.0], [0.0, 1.0]) == 0.0

    def test_smape_bounded(self):
        assert smape([1.0], [-1.0]) <= 200.0

    def test_mape_basic(self):
        assert mape([100.0, 200.0], [110.0, 180.0]) == pytest.approx(10.0)

    def test_mape_all_zero_true_raises(self):
        with pytest.raises(ValueError):
            mape([0.0], [1.0])

    def test_mae_rmse(self):
        assert mae([0.0, 0.0], [3.0, -3.0]) == 3.0
        assert rmse([0.0, 0.0], [3.0, -3.0]) == 3.0

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_quantile_abs_error(self):
        err = quantile_abs_error(np.zeros(100), np.arange(100.0), q=0.5)
        assert err == pytest.approx(49.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae([1.0], [1.0, 2.0])

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=9999))
    def test_smape_range_property(self, seed):
        rng = np.random.default_rng(seed)
        t = rng.normal(size=20)
        p = rng.normal(size=20)
        v = smape(t, p)
        assert 0.0 <= v <= 200.0
