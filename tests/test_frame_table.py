"""Unit tests for the columnar Table container."""

import numpy as np
import pytest

from repro.frame import Table


@pytest.fixture
def table():
    return Table(
        {
            "a": np.array([3, 1, 2, 1], dtype=np.int64),
            "b": np.array([0.5, 1.5, 2.5, 3.5]),
            "s": np.array(["x", "y", "x", "z"]),
        }
    )


class TestConstruction:
    def test_empty(self):
        t = Table()
        assert len(t) == 0
        assert t.columns == []

    def test_basic(self, table):
        assert len(table) == 4
        assert table.columns == ["a", "b", "s"]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            Table({"a": [1, 2], "b": [1]})

    def test_2d_column_raises(self):
        with pytest.raises(ValueError, match="1-D"):
            Table({"a": np.zeros((2, 2))})

    def test_scalar_becomes_length_one(self):
        t = Table({"a": 5})
        assert len(t) == 1
        assert t["a"][0] == 5

    def test_from_rows(self):
        t = Table.from_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert t["a"].tolist() == [1, 2]
        assert t["b"].tolist() == ["x", "y"]

    def test_from_rows_empty_with_columns(self):
        t = Table.from_rows([], columns=["a", "b"])
        assert t.columns == ["a", "b"]
        assert len(t) == 0


class TestAccess:
    def test_getitem_missing(self, table):
        with pytest.raises(KeyError, match="no column"):
            table["nope"]

    def test_contains(self, table):
        assert "a" in table
        assert "nope" not in table

    def test_row(self, table):
        r = table.row(1)
        assert r == {"a": 1, "b": 1.5, "s": "y"}

    def test_iter_rows(self, table):
        rows = list(table.iter_rows())
        assert len(rows) == 4
        assert rows[0]["s"] == "x"

    def test_equality(self, table):
        assert table == table.copy()
        assert table != table.filter(table["a"] > 1)


class TestTransforms:
    def test_filter(self, table):
        sub = table.filter(table["a"] == 1)
        assert len(sub) == 2
        assert sub["s"].tolist() == ["y", "z"]

    def test_filter_requires_bool(self, table):
        with pytest.raises(TypeError, match="boolean"):
            table.filter(np.array([1, 0, 1, 0]))

    def test_filter_wrong_length(self, table):
        with pytest.raises(ValueError, match="length"):
            table.filter(np.array([True, False]))

    def test_take(self, table):
        sub = table.take(np.array([2, 0]))
        assert sub["a"].tolist() == [2, 3]

    def test_slice_and_head(self, table):
        assert len(table.slice(1, 3)) == 2
        assert len(table.head(2)) == 2
        assert len(table.head(100)) == 4

    def test_sort_single_key(self, table):
        s = table.sort_by("a")
        assert s["a"].tolist() == [1, 1, 2, 3]

    def test_sort_is_stable_and_multikey(self, table):
        s = table.sort_by("a", "b")
        # rows with a==1 sorted by b: (1,1.5,'y') then (1,3.5,'z')
        assert s["s"].tolist() == ["y", "z", "x", "x"]

    def test_sort_descending(self, table):
        s = table.sort_by("a", descending=True)
        assert s["a"].tolist() == [3, 2, 1, 1]

    def test_sort_no_keys_raises(self, table):
        with pytest.raises(ValueError):
            table.sort_by()

    def test_with_column_replaces(self, table):
        t2 = table.with_column("a", np.zeros(4))
        assert t2["a"].tolist() == [0, 0, 0, 0]
        assert table["a"].tolist() == [3, 1, 2, 1]  # original untouched

    def test_with_column_wrong_length(self, table):
        with pytest.raises(ValueError):
            table.with_column("c", np.zeros(3))

    def test_without_columns(self, table):
        t2 = table.without_columns("b", "missing")
        assert t2.columns == ["a", "s"]

    def test_rename(self, table):
        t2 = table.rename({"a": "alpha"})
        assert "alpha" in t2 and "a" not in t2

    def test_select(self, table):
        t2 = table.select("s", "a")
        assert t2.columns == ["s", "a"]


class TestConcat:
    def test_concat(self, table):
        both = Table.concat([table, table])
        assert len(both) == 8
        assert both["a"].tolist() == table["a"].tolist() * 2

    def test_concat_mismatch(self, table):
        with pytest.raises(ValueError, match="mismatch"):
            Table.concat([table, table.select("a")])

    def test_concat_empty_list(self):
        assert len(Table.concat([])) == 0
