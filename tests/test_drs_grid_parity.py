"""Batched-DRS parity suite: ``mode="fast"`` vs the stepwise oracle.

The array-backed grid engine (:mod:`repro.energy.fast_drs`) must
produce **byte-identical** :class:`~repro.energy.drs.DRSOutcome` fields
— active series, demand, wake/woken/affected counters — for every row
of any batch, mirroring ``tests/test_sim_parity.py`` for the simulator
core.  Two layers:

* seeded fuzz over randomized demand/forecast series with randomized
  parameter grids (including the reactive baseline rewrite);
* the real scenario: the σ/ξ/window sweep grid on evaluation-window
  prefixes of all four Helios clusters plus Philly, demand taken from
  actual replay telemetry.
"""

import numpy as np
import pytest

from repro.energy import (
    DRSCase,
    DRSParams,
    run_drs,
    run_drs_batch,
    run_drs_grid,
    run_vanilla_drs,
    run_vanilla_drs_batch,
)
from repro.experiments.energy_exp import sweep_param_grid


def assert_outcomes_identical(fast, ref):
    """Byte-level equality of every DRSOutcome field."""
    assert fast.active.dtype == ref.active.dtype
    assert fast.active.tobytes() == ref.active.tobytes()
    assert fast.demand.dtype == ref.demand.dtype
    assert fast.demand.tobytes() == ref.demand.tobytes()
    assert fast.total_nodes == ref.total_nodes
    assert fast.wake_events == ref.wake_events
    assert fast.nodes_woken == ref.nodes_woken
    assert fast.affected_jobs == ref.affected_jobs
    assert fast.bins_per_day == ref.bins_per_day


def _random_case(rng) -> DRSCase:
    n = int(rng.integers(1, 300))
    total = int(rng.integers(1, 150))
    demand = np.round(rng.uniform(0, 1.2 * total, n))  # may exceed total
    forecast = np.maximum(0.0, demand + rng.normal(0, 0.05 * total, n))
    params = DRSParams(
        buffer_nodes=int(rng.integers(0, 8)),
        recent_window_bins=int(rng.integers(1, 20)),
        recent_threshold=float(rng.uniform(-2, 5)),
        future_threshold=float(rng.uniform(-2, 5)),
    )
    arrivals = (
        rng.integers(0, 7, n).astype(float) if rng.random() < 0.7 else None
    )
    return DRSCase(demand, forecast, total, params, arrivals)


class TestFuzzParity:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_batches(self, seed):
        rng = np.random.default_rng(seed)
        cases = [_random_case(rng) for _ in range(int(rng.integers(1, 12)))]
        fast = run_drs_batch(cases)
        ref = run_drs_batch(cases, mode="reference")
        for f, r in zip(fast, ref):
            assert_outcomes_identical(f, r)
        # the reactive rewrite must match the public single-run baseline
        for f, c in zip(run_vanilla_drs_batch(cases), cases):
            assert_outcomes_identical(
                f,
                run_vanilla_drs(
                    c.demand, c.total_nodes, c.params, c.arrivals_per_bin
                ),
            )

    def test_grid_matches_individual_runs(self):
        rng = np.random.default_rng(99)
        n, total = 500, 90
        demand = np.round(rng.uniform(0, total, n))
        forecast = np.roll(demand, -6)
        grid = sweep_param_grid(total)
        fast = run_drs_grid(demand, forecast, total, grid)
        for params, out in zip(grid, fast):
            assert_outcomes_identical(
                out, run_drs(demand, forecast, total, params)
            )

    def test_empty_batch(self):
        assert run_drs_batch([]) == []

    def test_single_empty_series(self):
        case = DRSCase(np.empty(0), np.empty(0), 10, DRSParams())
        (fast,) = run_drs_batch([case])
        (ref,) = run_drs_batch([case], mode="reference")
        assert_outcomes_identical(fast, ref)
        assert fast.active.size == 0

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            run_drs_batch([], mode="turbo")

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="must align"):
            run_drs_batch([DRSCase(np.zeros(5), np.zeros(4), 10, DRSParams())])
        with pytest.raises(ValueError, match="total_nodes"):
            run_drs_batch([DRSCase(np.zeros(5), np.zeros(5), 0, DRSParams())])
        with pytest.raises(ValueError, match="arrivals_per_bin"):
            run_drs_batch(
                [DRSCase(np.zeros(5), np.zeros(5), 10, DRSParams(), np.zeros(3))]
            )


@pytest.mark.slow  # full-horizon replays feed the real demand series
class TestClusterParity:
    """The paper's protocol: sweep grid on real evaluation-window demand."""

    def _real_case_rows(self, demand, total_nodes, horizon=18):
        forecast = np.empty_like(demand)
        forecast[:-horizon] = demand[horizon:]
        forecast[-horizon:] = demand[-1] if demand.size else 0.0
        rng = np.random.default_rng(7)
        arrivals = rng.integers(0, 5, demand.size).astype(float)
        return [
            DRSCase(demand, forecast, total_nodes, params, arrivals)
            for params in sweep_param_grid(total_nodes)
        ]

    @pytest.mark.parametrize("cluster", ["Venus", "Earth", "Saturn", "Uranus"])
    def test_helios_eval_window_prefix(self, cluster):
        from repro.experiments import common
        from repro.sim.telemetry import running_nodes_series
        from repro.stats.timeseries import TimeGrid

        replay = common.full_replay(cluster)
        start = common.EVAL_MONTH * common.MONTH_SECONDS
        grid = TimeGrid.covering(start, start + 7 * 86_400, 600)
        demand = running_nodes_series(replay, grid)  # 1-week eval prefix
        cases = self._real_case_rows(demand, replay.num_nodes)
        for f, r in zip(
            run_drs_batch(cases), run_drs_batch(cases, mode="reference")
        ):
            assert_outcomes_identical(f, r)

    def test_philly_eval_window_prefix(self):
        from repro.experiments import common
        from repro.sim.telemetry import running_nodes_series
        from repro.stats.timeseries import TimeGrid
        from repro.traces import SECONDS_PER_DAY

        replay = common.philly_replay("FIFO", days=common.PHILLY_DAYS)
        start = 61 * SECONDS_PER_DAY
        grid = TimeGrid.covering(start, start + 7 * SECONDS_PER_DAY, 600)
        demand = running_nodes_series(replay, grid)
        cases = self._real_case_rows(demand, replay.num_nodes)
        for f, r in zip(
            run_drs_batch(cases), run_drs_batch(cases, mode="reference")
        ):
            assert_outcomes_identical(f, r)

    def test_mixed_cluster_batch(self):
        """Helios + Philly rows of different lengths in one batch."""
        from repro.experiments import common
        from repro.sim.telemetry import running_nodes_series
        from repro.stats.timeseries import TimeGrid

        cases = []
        for cluster, days in (("Venus", 5), ("Earth", 3)):
            replay = common.full_replay(cluster)
            start = common.EVAL_MONTH * common.MONTH_SECONDS
            grid = TimeGrid.covering(start, start + days * 86_400, 600)
            demand = running_nodes_series(replay, grid)
            cases.extend(self._real_case_rows(demand, replay.num_nodes)[:6])
        for f, r in zip(
            run_drs_batch(cases), run_drs_batch(cases, mode="reference")
        ):
            assert_outcomes_identical(f, r)
