"""Deterministic fault-injection plane: plans, lookup, installation."""

import pickle

import pytest

from repro.framework import (
    CorruptPayload,
    FaultPlan,
    FaultSpec,
    clear_fault_plan,
    install_fault_plan,
    installed_fault_plan,
)


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec(key="Venus")
        assert spec.kind == "exception"
        assert spec.attempt == 0
        assert spec.at is None

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(key="a", kind="meteor")
        with pytest.raises(ValueError, match="attempt"):
            FaultSpec(key="a", attempt=-1)
        with pytest.raises(ValueError, match="at"):
            FaultSpec(key="a", at=-2)
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(key="a", delay_s=-0.5)

    def test_as_dict_round_trips_json(self):
        spec = FaultSpec(key="Earth", kind="crash", attempt=1, at=42)
        plan = FaultPlan(seed=3, faults=(spec,))
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.fault_for("Earth", 1) == spec


class TestFaultPlan:
    def test_lookup_by_key_and_attempt(self):
        plan = FaultPlan(
            seed=1,
            faults=(
                FaultSpec(key="a", kind="crash", attempt=0, at=5),
                FaultSpec(key="a", kind="exception", attempt=1),
                FaultSpec(key="b", kind="hang", attempt=0, at=0),
            ),
        )
        assert plan.fault_for("a", 0).kind == "crash"
        assert plan.fault_for("a", 1).kind == "exception"
        assert plan.fault_for("a", 2) is None
        assert plan.fault_for("b", 0).kind == "hang"
        assert plan.fault_for("c", 0) is None

    def test_duplicate_key_attempt_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(faults=(FaultSpec(key="a"), FaultSpec(key="a")))

    def test_same_plan_same_seed_identical(self):
        """The determinism contract: equal plans replay equal faults."""
        mk = lambda: FaultPlan(
            seed=9, faults=(FaultSpec(key="x", kind="crash", at=7),)
        )
        assert mk() == mk()
        assert mk().to_json() == mk().to_json()
        assert pickle.loads(pickle.dumps(mk())) == mk()

    def test_install_and_clear(self):
        plan = FaultPlan(seed=2, faults=(FaultSpec(key="k"),))
        try:
            install_fault_plan(plan)
            assert installed_fault_plan() == plan
        finally:
            clear_fault_plan()
        assert installed_fault_plan() is None


class TestCorruptPayload:
    def test_wraps_payload(self):
        wrapped = CorruptPayload({"x": 1})
        assert wrapped.payload == {"x": 1}
