"""Deterministic fault-injection plane: plans, lookup, installation."""

import pickle

import pytest

from repro.framework import (
    CorruptPayload,
    FaultPlan,
    FaultSpec,
    clear_fault_plan,
    install_fault_plan,
    installed_fault_plan,
)


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec(key="Venus")
        assert spec.kind == "exception"
        assert spec.attempt == 0
        assert spec.at is None

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(key="a", kind="meteor")
        with pytest.raises(ValueError, match="attempt"):
            FaultSpec(key="a", attempt=-1)
        with pytest.raises(ValueError, match="at"):
            FaultSpec(key="a", at=-2)
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(key="a", delay_s=-0.5)

    def test_as_dict_round_trips_json(self):
        spec = FaultSpec(key="Earth", kind="crash", attempt=1, at=42)
        plan = FaultPlan(seed=3, faults=(spec,))
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.fault_for("Earth", 1) == spec


class TestFaultPlan:
    def test_lookup_by_key_and_attempt(self):
        plan = FaultPlan(
            seed=1,
            faults=(
                FaultSpec(key="a", kind="crash", attempt=0, at=5),
                FaultSpec(key="a", kind="exception", attempt=1),
                FaultSpec(key="b", kind="hang", attempt=0, at=0),
            ),
        )
        assert plan.fault_for("a", 0).kind == "crash"
        assert plan.fault_for("a", 1).kind == "exception"
        assert plan.fault_for("a", 2) is None
        assert plan.fault_for("b", 0).kind == "hang"
        assert plan.fault_for("c", 0) is None

    def test_duplicate_key_attempt_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(faults=(FaultSpec(key="a"), FaultSpec(key="a")))

    def test_same_plan_same_seed_identical(self):
        """The determinism contract: equal plans replay equal faults."""
        mk = lambda: FaultPlan(
            seed=9, faults=(FaultSpec(key="x", kind="crash", at=7),)
        )
        assert mk() == mk()
        assert mk().to_json() == mk().to_json()
        assert pickle.loads(pickle.dumps(mk())) == mk()

    def test_install_and_clear(self):
        plan = FaultPlan(seed=2, faults=(FaultSpec(key="k"),))
        try:
            install_fault_plan(plan)
            assert installed_fault_plan() == plan
        finally:
            clear_fault_plan()
        assert installed_fault_plan() is None


class TestNetFaultSpecs:
    def test_net_kinds_require_a_frame_index(self):
        for kind in ("drop", "delay", "duplicate", "partition"):
            with pytest.raises(ValueError, match="frame index"):
                FaultSpec(key="link:w0", kind=kind)
            FaultSpec(key="link:w0", kind=kind, at=0)  # with at: fine

    def test_span_validated(self):
        with pytest.raises(ValueError, match="span"):
            FaultSpec(key="link:w0", kind="drop", at=0, span=0)

    def test_overlap_same_triple_rejected_differing_at_allowed(self):
        # At most one fault per (key, attempt, at) — even across the
        # process/net kind split — but stacking at different indices on
        # one attempt is the multi-fault contract.
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(faults=(
                FaultSpec(key="a", kind="crash", attempt=0, at=5),
                FaultSpec(key="a", kind="drop", attempt=0, at=5),
            ))
        plan = FaultPlan(faults=(
            FaultSpec(key="a", kind="crash", attempt=0, at=5),
            FaultSpec(key="a", kind="exception", attempt=0, at=9),
            FaultSpec(key="a", kind="crash", attempt=0),  # at=None startup
        ))
        assert len(plan.process_faults_for("a", 0)) == 3

    def test_process_and_net_lookups_split_by_kind(self):
        plan = FaultPlan(faults=(
            FaultSpec(key="x", kind="crash", attempt=0, at=3),
            FaultSpec(key="x", kind="partition", attempt=0, at=7, span=4),
            FaultSpec(key="x", kind="drop", attempt=1, at=0),
        ))
        # The supervisor plane never sees net kinds...
        assert plan.fault_for("x", 0).kind == "crash"
        assert [f.kind for f in plan.process_faults_for("x", 0)] == ["crash"]
        assert plan.fault_for("x", 1) is None
        # ...and the framing plane never sees process kinds.
        assert [f.kind for f in plan.net_faults_for("x", 0)] == ["partition"]
        assert [f.kind for f in plan.net_faults_for("x", 1)] == ["drop"]

    def test_env_round_trip_preserves_net_fields(self):
        plan = FaultPlan(seed=4, faults=(
            FaultSpec(key="link:w1", kind="partition", attempt=2, at=60,
                      span=100_000),
            FaultSpec(key="link:w1", kind="delay", attempt=2, at=9,
                      delay_s=0.25),
        ))
        try:
            install_fault_plan(plan)
            again = installed_fault_plan()
        finally:
            clear_fault_plan()
        assert again == plan
        part, delay = again.net_faults_for("link:w1", 2)
        assert (part.span, delay.delay_s) == (100_000, 0.25)


class TestCorruptPayload:
    def test_wraps_payload(self):
        wrapped = CorruptPayload({"x": 1})
        assert wrapped.payload == {"x": 1}
