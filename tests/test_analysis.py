"""Tests for the §3 characterization analysis modules."""

import numpy as np
import pytest

from repro.analysis import (
    duration_cdf,
    duration_summary,
    gpu_time_by_status,
    helios_philly_table,
    hourly_submission_profile,
    hourly_utilization_profile,
    job_size_cdfs,
    marquee_users,
    monthly_job_counts,
    monthly_utilization,
    render_cdf_points,
    render_kv,
    render_series,
    render_table,
    status_by_gpu_demand,
    status_distribution,
    user_completion_rates,
    user_queue_curve,
    user_resource_curve,
    vc_queue_and_duration,
    vc_utilization_stats,
)
from repro.frame import Table
from repro.sched import FIFOScheduler
from repro.sim import Simulator
from repro.traces import (
    HeliosTraceGenerator,
    PhillyParams,
    PhillyTraceGenerator,
    SynthParams,
    is_gpu_job,
)


@pytest.fixture(scope="module")
def gen():
    return HeliosTraceGenerator(SynthParams(months=2, scale=0.08, seed=3))


@pytest.fixture(scope="module")
def venus(gen):
    return gen.generate_cluster("Venus")


@pytest.fixture(scope="module")
def venus_replay(gen, venus):
    gpu = venus.filter(is_gpu_job(venus))
    return Simulator(gen.specs["Venus"], FIFOScheduler()).run(gpu)


class TestJobChars:
    def test_duration_cdf_monotone(self, venus):
        xs, ys = duration_cdf(venus, "gpu")
        assert np.all(np.diff(ys) >= 0)
        assert ys[-1] == pytest.approx(1.0)

    def test_duration_cdf_cpu_left_of_gpu(self, venus):
        """Fig 5: CPU jobs are much shorter than GPU jobs."""
        _, g = duration_cdf(venus, "gpu", points=50)
        _, c = duration_cdf(venus, "cpu", points=50)
        # median positions: CPU CDF reaches 0.5 at smaller durations
        xs_g, ys_g = duration_cdf(venus, "gpu", points=50)
        xs_c, ys_c = duration_cdf(venus, "cpu", points=50)
        med_g = xs_g[np.searchsorted(ys_g, 0.5)]
        med_c = xs_c[np.searchsorted(ys_c, 0.5)]
        assert med_c < med_g

    def test_duration_cdf_bad_kind(self, venus):
        with pytest.raises(ValueError):
            duration_cdf(venus, "tpu")

    def test_gpu_time_by_status_sums_to_one(self, venus):
        shares = gpu_time_by_status(venus)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["completed"] > shares["failed"]

    def test_job_size_cdfs(self, venus):
        t = job_size_cdfs(venus)
        assert np.all(np.diff(t["job_fraction"]) >= 0)
        assert np.all(np.diff(t["gpu_time_fraction"]) >= 0)
        # Implication #4: count CDF is far above the GPU-time CDF at size 1
        assert t["job_fraction"][0] > t["gpu_time_fraction"][0]

    def test_status_distribution(self, venus):
        t = status_distribution(venus)
        for row in t.iter_rows():
            assert row["completed"] + row["canceled"] + row["failed"] == pytest.approx(1.0)
        cpu = t.filter(t["kind"] == "cpu")
        gpu = t.filter(t["kind"] == "gpu")
        assert cpu["completed"][0] > gpu["completed"][0]

    def test_status_by_gpu_demand_monotonic_trend(self, venus):
        t = status_by_gpu_demand(venus)
        comp = t["completed"]
        # completion at the largest observed bucket < at single-GPU
        assert comp[-1] < comp[0]

    def test_duration_summary_keys(self, venus):
        s = duration_summary(venus)
        assert s["gpu_mean"] > s["gpu_median"]
        assert s["n_gpu_jobs"] > 0 and s["n_cpu_jobs"] > 0


class TestClusterChars:
    def test_hourly_utilization_profile(self, venus_replay):
        prof = hourly_utilization_profile(venus_replay)
        assert prof.shape == (24,)
        assert np.all((prof >= 0) & (prof <= 1))

    def test_night_dip(self, venus_replay):
        """Fig 2a: utilization dips a few percent at night."""
        prof = hourly_utilization_profile(venus_replay)
        night = prof[2:7].mean()
        day = prof[10:18].mean()
        assert night <= day + 0.02  # dip (or at worst flat)

    def test_hourly_submission_profile(self, venus):
        prof = hourly_submission_profile(venus, months=2)
        assert prof.shape == (24,)
        assert prof[3] < prof[14]  # night trough vs afternoon

    def test_monthly_job_counts(self, venus):
        t = monthly_job_counts(venus)
        assert len(t) == 2
        assert (t["single_gpu_jobs"] + t["multi_gpu_jobs"]).sum() == len(
            venus.filter(is_gpu_job(venus))
        )

    def test_monthly_utilization(self, venus_replay):
        t = monthly_utilization(venus_replay, months=2, split_by_size=True)
        assert len(t) == 2
        total = t["utilization"]
        assert np.all((total > 0.2) & (total <= 1.1))
        np.testing.assert_allclose(
            t["single_gpu_utilization"] + t["multi_gpu_utilization"], total, atol=1e-9
        )

    def test_vc_utilization_stats(self, gen, venus_replay):
        t = vc_utilization_stats(venus_replay, gen.specs["Venus"])
        assert len(t) >= 3
        assert np.all(t["util_q1"] <= t["util_median"])
        assert np.all(t["util_median"] <= t["util_q3"])

    def test_vc_queue_and_duration_normalized(self, venus_replay):
        t = vc_queue_and_duration(venus_replay)
        assert t["norm_queue_delay"].min() >= 0.0
        assert t["norm_queue_delay"].max() <= 1.0


class TestUserChars:
    def test_resource_curve_concave(self, venus):
        frac, share = user_resource_curve(venus, "gpu")
        assert share[0] == 0.0
        assert share[-1] == pytest.approx(1.0)
        assert np.all(np.diff(share) >= -1e-12)
        # heavy tail: top 20% of users hold > 40% of GPU time
        assert share[20] > 0.4

    def test_cpu_more_concentrated(self, venus):
        """Fig 8: the CPU-time user curve is steeper than the GPU one.

        Compared via Gini coefficient — point-wise comparison is too
        coarse with the handful of CPU users a scaled-down cluster has.
        """

        def gini(curve):
            frac, share = curve
            return 2.0 * np.trapezoid(share, frac) - 1.0

        assert gini(user_resource_curve(venus, "cpu")) > gini(
            user_resource_curve(venus, "gpu")
        )

    def test_queue_curve(self, venus_replay):
        frac, share = user_queue_curve(venus_replay)
        assert share[-1] == pytest.approx(1.0)
        assert share[25] > 0.5  # few users bear most queueing (Fig 9a)

    def test_completion_rates(self, venus):
        t = user_completion_rates(venus)
        assert np.all((t["completion_rate"] >= 0) & (t["completion_rate"] <= 1))
        assert len(t) > 5

    def test_marquee_users(self, venus_replay):
        m = marquee_users(venus_replay, 0.05)
        assert m["n_users"] >= 1
        assert 0.0 < m["queue_share"] <= 1.0

    def test_marquee_validation(self, venus_replay):
        with pytest.raises(ValueError):
            marquee_users(venus_replay, 0.0)


class TestCompare:
    def test_table2(self, gen):
        traces = {"Venus": gen.generate_cluster("Venus")}
        philly = PhillyTraceGenerator(PhillyParams(days=15, scale=0.05, seed=9)).generate()
        t = helios_philly_table(traces, philly, helios_vcs=4, philly_vcs=3,
                                helios_months=2, philly_days=15)
        rows = {r["metric"]: r for r in t.iter_rows()}
        assert rows["cpu_jobs"]["philly"] == "0"
        # Table 2: Philly jobs statistically run much longer than Helios.
        assert float(rows["avg_duration_s"]["philly"]) > float(
            rows["avg_duration_s"]["helios"]
        )


class TestReport:
    def test_render_table(self):
        t = Table({"a": np.array([1, 2]), "b": np.array([0.5, 1234.5])})
        out = render_table(t, title="demo")
        assert "demo" in out and "a" in out and "1.23e+03" in out

    def test_render_table_empty(self):
        assert "(empty)" in render_table(Table({"a": np.array([])}))

    def test_render_series(self):
        out = render_series(np.sin(np.arange(200) / 10), title="wave")
        assert "wave" in out and "[" in out

    def test_render_series_constant(self):
        out = render_series(np.ones(5))
        assert "▄" in out or "[1..1]" in out

    def test_render_cdf_points(self):
        out = render_cdf_points(
            np.array([1.0, 10.0, 100.0]), np.array([0.1, 0.5, 1.0]), [10.0]
        )
        assert "F(10)" in out

    def test_render_kv(self):
        out = render_kv({"alpha": 1.0, "b": "x"}, title="t")
        assert "alpha" in out and ": x" in out
