"""Tests for replay telemetry (utilization / node series)."""

import numpy as np
import pytest

from repro.sched import FIFOScheduler
from repro.sim import (
    Simulator,
    busy_gpus_series,
    node_busy_intervals,
    running_nodes_series,
    utilization_series,
)
from repro.stats import TimeGrid

from helpers import make_spec, make_trace


class TestUtilization:
    def test_single_job_utilization(self):
        res = Simulator(make_spec(nodes=2), FIFOScheduler()).run(
            make_trace([(0, 8, 100)])
        )
        grid = TimeGrid(0.0, 50.0, 4)
        util = utilization_series(res, grid)
        np.testing.assert_allclose(util, [0.5, 0.5, 0.0, 0.0])

    def test_busy_gpus(self):
        res = Simulator(make_spec(nodes=2), FIFOScheduler()).run(
            make_trace([(0, 8, 100), (0, 4, 100)])
        )
        grid = TimeGrid(0.0, 100.0, 2)
        np.testing.assert_allclose(busy_gpus_series(res, grid), [12.0, 0.0])

    def test_empty_result(self):
        res = Simulator(make_spec(), FIFOScheduler()).run(make_trace([]))
        grid = TimeGrid(0.0, 10.0, 2)
        assert utilization_series(res, grid).tolist() == [0.0, 0.0]

    def test_requires_intervals(self):
        res = Simulator(
            make_spec(), FIFOScheduler(), collect_node_intervals=False
        ).run(make_trace([(0, 1, 10)]))
        with pytest.raises(ValueError, match="collect_node_intervals"):
            utilization_series(res, TimeGrid(0.0, 10.0, 1))


class TestNodeBusyIntervals:
    def test_merges_overlaps(self):
        # Two jobs overlap on the same node (1 GPU each).
        res = Simulator(make_spec(nodes=1), FIFOScheduler()).run(
            make_trace([(0, 1, 100), (50, 1, 100)])
        )
        busy = node_busy_intervals(res)
        assert len(busy) == 1
        assert busy["start"][0] == 0.0
        assert busy["end"][0] == 150.0

    def test_gap_produces_two_intervals(self):
        res = Simulator(make_spec(nodes=1), FIFOScheduler()).run(
            make_trace([(0, 1, 10), (100, 1, 10)])
        )
        busy = node_busy_intervals(res)
        assert len(busy) == 2
        assert busy["end"].tolist() == [10.0, 110.0]

    def test_multiple_nodes(self):
        res = Simulator(make_spec(nodes=2), FIFOScheduler()).run(
            make_trace([(0, 8, 10), (0, 8, 20)])
        )
        busy = node_busy_intervals(res)
        assert len(busy) == 2
        assert sorted(busy["end"].tolist()) == [10.0, 20.0]

    def test_empty(self):
        res = Simulator(make_spec(), FIFOScheduler()).run(make_trace([]))
        assert len(node_busy_intervals(res)) == 0


class TestRunningNodes:
    def test_counts_nodes_not_gpus(self):
        res = Simulator(make_spec(nodes=2), FIFOScheduler()).run(
            make_trace([(0, 1, 100), (0, 1, 100), (0, 8, 100)])
        )
        grid = TimeGrid(0.0, 50.0, 4)
        nodes = running_nodes_series(res, grid)
        # Two 1-GPU jobs pack on one node; the 8-GPU job takes the other.
        np.testing.assert_allclose(nodes, [2.0, 2.0, 0.0, 0.0])

    def test_zero_after_all_done(self):
        res = Simulator(make_spec(nodes=1), FIFOScheduler()).run(
            make_trace([(0, 1, 10)])
        )
        grid = TimeGrid(0.0, 10.0, 3)
        nodes = running_nodes_series(res, grid)
        assert nodes[0] == 1.0 and nodes[-1] == 0.0
