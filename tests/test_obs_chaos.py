"""Chaos coverage for the obs layer: spans/metrics must survive
SIGKILLed workers and checkpoint-resume without double-counting, and
the fork-unavailable in-process supervisor must report the same metric
totals as real forked supervision.

The comparison surface is the published ``serve.*`` counters, which the
server derives from its checkpointed loop state exactly once at the end
of a completed run — the crash-recovery analogue of the payload parity
guarantee.  Live wall-clock histograms (phase timings, heartbeat gaps)
are per-attempt by construction and excluded.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.framework import (
    FaultPlan,
    FaultSpec,
    Supervision,
    SupervisionLog,
    fork_available,
)
from repro.serve import ShardTask
from repro.serve.runtime import run_shard
from repro.framework.supervise import run_supervised

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires os.fork")

FAST_SUP = Supervision(
    timeout_s=120.0,
    max_retries=2,
    backoff_base_s=0.001,
    backoff_cap_s=0.01,
    poll_interval_s=0.005,
)

_TASK = ShardTask(
    cluster="Venus", history_days=14, stream_days=1.0, max_jobs=400,
    checkpoint_every=50,
)

_CRASH_PLAN = FaultPlan(
    seed=7, faults=(FaultSpec(key="Venus", kind="crash", at=130),)
)


@pytest.fixture(autouse=True)
def clean_recorder():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


def _serve_counters(snap) -> dict:
    return {k: v for k, v in snap.counters.items() if k.startswith("serve.")}


def _supervised_run(fault_plan):
    log = SupervisionLog()
    reports = run_supervised(
        run_shard, [_TASK], jobs=1, labels=["Venus"],
        supervision=FAST_SUP, fault_plan=fault_plan,
        with_context=True, log=log,
    )
    return reports[0], log


@needs_fork
class TestCrashRecoveryObsParity:
    def test_sigkill_resume_totals_match_clean_run(self):
        """A SIGKILLed attempt's obs state dies with the fork; the
        resumed attempt republishes full totals from its checkpointed
        state — so a chaos run's serve.* counters equal a clean run's
        (replayed batches are not double-counted)."""
        obs.enable()
        report_chaos, log = _supervised_run(_CRASH_PLAN)
        chaos = _serve_counters(obs.snapshot())
        assert [e[2] for e in log.events] == ["crash", "ok"]
        assert chaos  # the resumed attempt did publish

        obs.reset()
        obs.enable()
        report_clean, _ = _supervised_run(None)
        clean = _serve_counters(obs.snapshot())

        assert chaos == clean
        assert report_chaos.parity_bytes() == report_clean.parity_bytes()

    def test_supervisor_plane_saw_the_crash(self):
        obs.enable()
        _, _ = _supervised_run(_CRASH_PLAN)
        snap = obs.snapshot()
        assert snap.counters["supervise.attempts"] == 2
        assert snap.counters["supervise.outcome.crash"] == 1
        assert snap.counters["supervise.outcome.ok"] == 1
        attempts = [s for s in snap.spans if s.name == "supervise.attempt"]
        assert sorted(s.attrs["outcome"] for s in attempts) == ["crash", "ok"]
        # The dead attempt's serve.run span died with its fork; only the
        # resumed attempt's shard spans survive.
        assert sum(1 for s in snap.spans if s.name == "serve.run") == 1

    def test_disabled_obs_changes_nothing(self):
        """Chaos runs with obs off produce the identical report (the
        whole layer is out-of-band)."""
        report_off, _ = _supervised_run(_CRASH_PLAN)
        assert obs.snapshot().empty
        obs.enable()
        report_on, _ = _supervised_run(_CRASH_PLAN)
        assert report_off.parity_bytes() == report_on.parity_bytes()


@needs_fork
class TestInProcessFallbackParity:
    def test_inprocess_fallback_same_metric_totals(self, monkeypatch):
        """The daemonic-pool fallback (simulated crash + explicit
        attempt isolation) must publish the same serve.* totals as real
        forked supervision under the same fault plan."""
        obs.enable()
        report_forked, forked_log = _supervised_run(_CRASH_PLAN)
        forked = _serve_counters(obs.snapshot())

        import repro.framework.supervise as sup_mod

        monkeypatch.setattr(sup_mod, "fork_available", lambda: False)
        obs.reset()
        obs.enable()
        report_inproc, inproc_log = _supervised_run(_CRASH_PLAN)
        inproc = _serve_counters(obs.snapshot())

        assert forked_log.events == inproc_log.events
        assert forked == inproc
        assert report_forked.parity_bytes() == report_inproc.parity_bytes()

    def test_inprocess_failed_attempt_metrics_discarded(self, monkeypatch):
        """A simulated crash's partial metrics must not leak into the
        run-wide view — only supervisor-plane counters record it."""
        import repro.framework.supervise as sup_mod

        monkeypatch.setattr(sup_mod, "fork_available", lambda: False)
        obs.enable()
        _, log = _supervised_run(_CRASH_PLAN)
        snap = obs.snapshot()
        assert [e[2] for e in log.events] == ["crash", "ok"]
        # serve.run spans: only the successful (resumed) attempt's.
        assert sum(1 for s in snap.spans if s.name == "serve.run") == 1
        assert snap.counters["supervise.outcome.crash"] == 1

        obs.reset()
        obs.enable()
        _, _ = _supervised_run(None)
        clean = _serve_counters(obs.snapshot())
        obs.reset()
        obs.enable()
        _, _ = _supervised_run(_CRASH_PLAN)
        chaos = _serve_counters(obs.snapshot())
        assert chaos == clean
