"""Tests for the time-series forecasters (AR, Fourier, Holt-Winters, LSTM)."""

import numpy as np
import pytest

from repro.ml import (
    ARIMAForecaster,
    FourierForecaster,
    HoltWintersForecaster,
    LSTMForecaster,
    LSTMParams,
    compare_forecasters,
    evaluate_forecaster,
    rolling_origin_splits,
    time_split,
    train_test_split,
)
from repro.stats import smape


def _seasonal_series(n=600, period=24, noise=0.3, trend=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (
        10.0
        + trend * t
        + 3.0 * np.sin(2 * np.pi * t / period)
        + 1.0 * np.cos(4 * np.pi * t / period)
        + noise * rng.normal(size=n)
    )


class TestARIMA:
    def test_ar1_recovery(self):
        """AR(1) with known phi: fitted coefficient should be close."""
        rng = np.random.default_rng(0)
        phi = 0.8
        y = np.zeros(2000)
        for t in range(1, 2000):
            y[t] = phi * y[t - 1] + rng.normal(0, 0.5)
        model = ARIMAForecaster(p=1, d=0).fit(y)
        assert model.coef_[0] == pytest.approx(phi, abs=0.05)

    def test_forecast_shape_and_continuity(self):
        y = _seasonal_series()
        fc = ARIMAForecaster(p=48, d=0).fit(y).forecast(24)
        assert fc.shape == (24,)
        assert abs(fc[0] - y[-1]) < 5.0

    def test_differencing_handles_trend(self):
        t = np.arange(300, dtype=float)
        y = 5.0 + 0.5 * t  # pure linear trend
        fc = ARIMAForecaster(p=2, d=1).fit(y).forecast(10)
        expect = 5.0 + 0.5 * np.arange(300, 310)
        np.testing.assert_allclose(fc, expect, rtol=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ARIMAForecaster(p=0)
        with pytest.raises(ValueError):
            ARIMAForecaster(d=-1)
        with pytest.raises(ValueError):
            ARIMAForecaster(p=10).fit(np.arange(5.0))
        with pytest.raises(RuntimeError):
            ARIMAForecaster().forecast(3)
        with pytest.raises(ValueError):
            ARIMAForecaster(p=2, d=0).fit(np.arange(50.0)).forecast(0)


class TestFourier:
    def test_seasonal_fit(self):
        y = _seasonal_series(noise=0.1)
        model = FourierForecaster(periods=(24,), harmonics=3).fit(y)
        fc = model.forecast(48)
        truth = _seasonal_series(n=648, noise=0.0)[600:]
        assert smape(truth, fc) < 10.0

    def test_captures_trend(self):
        y = _seasonal_series(trend=0.05, noise=0.1)
        fc = FourierForecaster(periods=(24,)).fit(y).forecast(24)
        assert fc.mean() > y[:24].mean()  # trend continues upward

    def test_fitted_matches_series(self):
        y = _seasonal_series(noise=0.05)
        model = FourierForecaster(periods=(24,), harmonics=4).fit(y)
        assert smape(y, model.fitted()) < 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FourierForecaster(harmonics=0)
        with pytest.raises(ValueError):
            FourierForecaster(periods=(1.0,))
        with pytest.raises(ValueError):
            FourierForecaster(periods=(24,)).fit(np.arange(3.0))
        with pytest.raises(RuntimeError):
            FourierForecaster().forecast(1)


class TestHoltWinters:
    def test_seasonal_forecast(self):
        y = _seasonal_series(noise=0.1)
        model = HoltWintersForecaster(season_length=24).fit(y)
        fc = model.forecast(48)
        truth = _seasonal_series(n=648, noise=0.0)[600:]
        assert smape(truth, fc) < 15.0

    def test_season_continuity(self):
        """Forecast season phase must continue from the series end."""
        period = 12
        t = np.arange(240)
        y = np.sin(2 * np.pi * t / period)
        fc = HoltWintersForecaster(season_length=period).fit(y).forecast(period)
        truth = np.sin(2 * np.pi * np.arange(240, 240 + period) / period)
        assert smape(truth + 2.0, fc + 2.0) < 20.0

    def test_explicit_params_skip_grid(self):
        y = _seasonal_series(n=200)
        m = HoltWintersForecaster(24, alpha=0.5, beta=0.1, gamma=0.2).fit(y)
        assert m.params_ == (0.5, 0.1, 0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            HoltWintersForecaster(season_length=1)
        with pytest.raises(ValueError):
            HoltWintersForecaster(season_length=24).fit(np.arange(10.0))
        with pytest.raises(RuntimeError):
            HoltWintersForecaster().forecast(5)


class TestLSTM:
    def test_learns_sine(self):
        y = _seasonal_series(n=400, noise=0.05)
        params = LSTMParams(window=24, hidden=12, epochs=15, random_state=0)
        model = LSTMForecaster(params).fit(y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]
        fc = model.forecast(24)
        assert fc.shape == (24,)
        # forecast stays in a sane range (not diverging)
        assert np.all(np.abs(fc - y.mean()) < 5 * y.std())

    def test_deterministic(self):
        y = _seasonal_series(n=200)
        p = LSTMParams(window=12, hidden=8, epochs=3, random_state=7)
        f1 = LSTMForecaster(p).fit(y).forecast(5)
        f2 = LSTMForecaster(p).fit(y).forecast(5)
        np.testing.assert_allclose(f1, f2)

    def test_validation(self):
        with pytest.raises(ValueError):
            LSTMParams(window=1)
        with pytest.raises(ValueError):
            LSTMForecaster(LSTMParams(window=50)).fit(np.arange(10.0))
        with pytest.raises(RuntimeError):
            LSTMForecaster().forecast(2)


class TestModelSelection:
    def test_time_split(self):
        times = np.array([1.0, 2.0, 3.0, 4.0])
        train, test = time_split(times, 3.0)
        assert train.tolist() == [True, True, False, False]
        assert test.tolist() == [False, False, True, True]

    def test_train_test_split_disjoint(self):
        tr, te = train_test_split(100, 0.2, seed=1)
        assert len(set(tr) & set(te)) == 0
        assert len(tr) + len(te) == 100

    def test_train_test_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split(10, 0.0)

    def test_rolling_origin(self):
        splits = list(rolling_origin_splits(100, initial=60, horizon=10))
        assert len(splits) == 4
        first_train, first_test = splits[0]
        assert first_train == slice(0, 60)
        assert first_test == slice(60, 70)

    def test_evaluate_forecaster(self):
        y = _seasonal_series(n=300, noise=0.05)
        err = evaluate_forecaster(
            lambda: FourierForecaster(periods=(24,)), y, initial=200, horizon=24
        )
        assert err < 10.0

    def test_evaluate_too_short_raises(self):
        with pytest.raises(ValueError):
            evaluate_forecaster(lambda: None, np.arange(10.0), 20, 5)

    def test_compare_forecasters_orders_models(self):
        """On a seasonal series the seasonal models beat a naive AR(1)."""
        y = _seasonal_series(n=400, noise=0.1)
        scores = compare_forecasters(
            {
                "fourier": lambda: FourierForecaster(periods=(24,)),
                "ar1": lambda: ARIMAForecaster(p=1, d=0),
            },
            y,
            initial=300,
            horizon=24,
        )
        assert scores["fourier"] < scores["ar1"]
