"""Tests for trace IO, slicing, and the invariant validator."""

import numpy as np
import pytest

from repro.frame import Table
from repro.traces import (
    HeliosTraceGenerator,
    SynthParams,
    TraceValidationError,
    load_trace,
    month_of,
    save_trace,
    slice_month,
    slice_period,
    split_train_eval,
    validate_trace,
)
from repro.traces.schema import SECONDS_PER_DAY


@pytest.fixture(scope="module")
def small_trace():
    gen = HeliosTraceGenerator(SynthParams(months=2, scale=0.04, seed=11))
    return gen.generate_cluster("Venus")


class TestIO:
    def test_roundtrip(self, tmp_path, small_trace):
        path = tmp_path / "venus.csv"
        save_trace(small_trace, path)
        back = load_trace(path)
        assert len(back) == len(small_trace)
        np.testing.assert_allclose(back["duration"], small_trace["duration"])
        assert back["status"].tolist() == small_trace["status"].tolist()

    def test_save_rejects_bad_schema(self, tmp_path):
        with pytest.raises(ValueError, match="missing columns"):
            save_trace(Table({"a": [1]}), tmp_path / "x.csv")


class TestSlicing:
    def test_slice_period(self, small_trace):
        t0, t1 = 10 * SECONDS_PER_DAY, 20 * SECONDS_PER_DAY
        sub = slice_period(small_trace, t0, t1)
        assert np.all((sub["submit_time"] >= t0) & (sub["submit_time"] < t1))

    def test_slice_period_validates(self, small_trace):
        with pytest.raises(ValueError):
            slice_period(small_trace, 10, 10)

    def test_slice_month_partition(self, small_trace):
        m0 = slice_month(small_trace, 0)
        m1 = slice_month(small_trace, 1)
        assert len(m0) + len(m1) == len(small_trace)

    def test_slice_month_validates(self, small_trace):
        with pytest.raises(ValueError):
            slice_month(small_trace, -1)

    def test_split_train_eval(self, small_trace):
        train, ev = split_train_eval(small_trace, eval_month=1)
        assert len(train) + len(ev) == len(small_trace)
        assert train["submit_time"].max() < 30 * SECONDS_PER_DAY
        assert ev["submit_time"].min() >= 30 * SECONDS_PER_DAY

    def test_month_of(self):
        t = np.array([0, 29 * SECONDS_PER_DAY, 30 * SECONDS_PER_DAY])
        assert month_of(t).tolist() == [0, 0, 1]


class TestValidator:
    def _base(self):
        return {
            "job_id": np.array(["a", "b"]),
            "cluster": np.array(["X", "X"]),
            "vc": np.array(["v1", "v1"]),
            "user": np.array(["u", "u"]),
            "name": np.array(["n1", "n2"]),
            "gpu_num": np.array([1, 0], dtype=np.int64),
            "cpu_num": np.array([6, 2], dtype=np.int64),
            "node_num": np.array([1, 1], dtype=np.int64),
            "submit_time": np.array([0, 10], dtype=np.int64),
            "duration": np.array([5.0, 5.0]),
            "status": np.array(["completed", "failed"]),
        }

    def test_valid_passes(self):
        validate_trace(Table(self._base()))

    def test_empty_passes(self):
        cols = {k: v[:0] for k, v in self._base().items()}
        validate_trace(Table(cols))

    def test_duplicate_ids(self):
        cols = self._base()
        cols["job_id"] = np.array(["a", "a"])
        with pytest.raises(TraceValidationError, match="unique"):
            validate_trace(Table(cols))

    def test_negative_duration(self):
        cols = self._base()
        cols["duration"] = np.array([5.0, -1.0])
        with pytest.raises(TraceValidationError, match="duration"):
            validate_trace(Table(cols))

    def test_bad_status(self):
        cols = self._base()
        cols["status"] = np.array(["completed", "exploded"])
        with pytest.raises(TraceValidationError, match="status"):
            validate_trace(Table(cols))

    def test_cpu_job_without_cpus(self):
        cols = self._base()
        cols["cpu_num"] = np.array([6, 0], dtype=np.int64)
        with pytest.raises(TraceValidationError, match="CPU"):
            validate_trace(Table(cols))

    def test_replayed_consistency(self):
        cols = self._base()
        cols["start_time"] = np.array([0.0, 12.0])
        cols["end_time"] = np.array([5.0, 17.0])
        cols["queue_delay"] = np.array([0.0, 2.0])
        validate_trace(Table(cols), replayed=True)

    def test_replayed_start_before_submit(self):
        cols = self._base()
        cols["start_time"] = np.array([-1.0, 12.0])
        cols["end_time"] = np.array([4.0, 17.0])
        cols["queue_delay"] = np.array([-1.0, 2.0])
        with pytest.raises(TraceValidationError, match="before submission"):
            validate_trace(Table(cols), replayed=True)
