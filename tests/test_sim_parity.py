"""Fast-engine parity suite: ``mode="fast"`` vs ``mode="reference"``.

The array-backed engine must produce **byte-identical**
:class:`~repro.sim.engine.ReplayResult` payloads — per-job timings,
queue delays, preemption counts, and node-interval telemetry — on any
trace and policy.  Two layers:

* seeded fuzz over randomized small traces (mixed VCs, bursty
  same-timestamp arrival bursts, preemption on and off);
* the real scenario: the evaluation-month replay of all four Helios
  clusters plus a Philly window, FIFO and the preemptive SRTF baseline.
"""

import numpy as np
import pytest

from repro.frame import Table
from repro.sched import FIFOScheduler, SJFScheduler, SRTFScheduler
from repro.sim import Simulator, normalize_node_events

from helpers import make_spec, make_trace


def assert_replays_identical(fast, ref):
    """Byte-level equality of every ReplayResult payload field."""
    assert fast.start_times.dtype == ref.start_times.dtype
    assert fast.start_times.tobytes() == ref.start_times.tobytes()
    assert fast.end_times.tobytes() == ref.end_times.tobytes()
    assert fast.queue_delays.tobytes() == ref.queue_delays.tobytes()
    assert fast.preemptions.dtype == ref.preemptions.dtype
    assert fast.preemptions.tobytes() == ref.preemptions.tobytes()
    for col in ("node", "start", "end", "gpus"):
        a, b = fast.node_intervals[col], ref.node_intervals[col]
        assert a.dtype == b.dtype
        assert a.tobytes() == b.tobytes()
    assert fast.num_nodes == ref.num_nodes
    assert fast.total_gpus == ref.total_gpus


def _random_trace(rng, n_vcs):
    """Small random workload with heavy same-timestamp collisions."""
    n = int(rng.integers(1, 90))
    step = int(rng.integers(1, 50))
    rows = [
        (
            int(rng.integers(0, 25)) * step,  # few distinct instants: bursts
            int(rng.choice([1, 2, 3, 4, 7, 8, 9, 16])),
            float(rng.integers(1, 250)),
            f"vc{int(rng.integers(0, n_vcs))}",
        )
        for _ in range(n)
    ]
    return make_trace(rows)


class TestFuzzParity:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_traces_all_policies(self, seed):
        rng = np.random.default_rng(seed)
        n_vcs = int(rng.integers(1, 4))
        spec = make_spec(nodes=int(rng.integers(1, 5)), vcs=n_vcs)
        trace = _random_trace(rng, n_vcs)
        for sched in (FIFOScheduler(), SJFScheduler(), SRTFScheduler()):
            try:
                ref = Simulator(spec, sched, mode="reference").run(trace)
            except (ValueError, RuntimeError) as exc:
                # infeasible workload: the fast path must reject it with
                # the identical error
                with pytest.raises(type(exc)) as excinfo:
                    Simulator(spec, sched).run(trace)
                assert str(excinfo.value) == str(exc)
                continue
            fast = Simulator(spec, sched).run(trace)
            assert_replays_identical(fast, ref)

    def test_no_telemetry_mode(self):
        trace = _random_trace(np.random.default_rng(99), 2)
        spec = make_spec(nodes=3, vcs=2)
        for mode in ("fast", "reference"):
            res = Simulator(
                spec, SRTFScheduler(), collect_node_intervals=False, mode=mode
            ).run(trace)
            assert len(res.node_intervals) == 0
            assert res.node_intervals["node"].dtype == np.int64
        fast = Simulator(spec, SJFScheduler(), collect_node_intervals=False).run(trace)
        ref = Simulator(
            spec, SJFScheduler(), collect_node_intervals=False, mode="reference"
        ).run(trace)
        assert_replays_identical(fast, ref)

    def test_empty_trace(self):
        spec = make_spec()
        fast = Simulator(spec, FIFOScheduler()).run(make_trace([]))
        ref = Simulator(spec, FIFOScheduler(), mode="reference").run(make_trace([]))
        assert_replays_identical(fast, ref)


def _node_events_table(rows):
    """rows: list of (time, node, up)."""
    return Table(
        {
            "time": np.array([r[0] for r in rows], dtype=float),
            "node": np.array([r[1] for r in rows], dtype=np.int64),
            "up": np.array([r[2] for r in rows], dtype=np.int64),
        }
    )


def _random_node_events(rng, num_nodes, horizon):
    """Valid per-node down/up alternations with integer-time collisions."""
    rows = []
    for node in range(num_nodes):
        if rng.random() < 0.4:
            continue
        t = 0.0
        for _ in range(int(rng.integers(1, 3))):
            t += float(rng.integers(0, max(2, horizon // 3)))
            rows.append((t, node, 0))
            t += float(rng.integers(1, max(2, horizon // 3)))
            rows.append((t, node, 1))
    return _node_events_table(rows)


class TestNodeEventParity:
    """Node failures: blacklisted placements, drained jobs, byte parity."""

    @pytest.mark.parametrize("seed", range(15))
    def test_fuzz_with_node_failures(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n_vcs = int(rng.integers(1, 3))
        nodes = int(rng.integers(2, 5))
        spec = make_spec(nodes=nodes, vcs=n_vcs)
        trace = _random_trace(rng, n_vcs)
        events = _random_node_events(rng, nodes * n_vcs, 1000)
        for sched in (FIFOScheduler(), SJFScheduler(), SRTFScheduler()):
            try:
                ref = Simulator(spec, sched, mode="reference").run(
                    trace, node_events=events
                )
            except (ValueError, RuntimeError) as exc:
                with pytest.raises(type(exc)) as excinfo:
                    Simulator(spec, sched).run(trace, node_events=events)
                assert str(excinfo.value) == str(exc)
                continue
            fast = Simulator(spec, sched).run(trace, node_events=events)
            assert_replays_identical(fast, ref)

    def test_directed_drain_and_blacklist(self):
        # Node 0 goes down at t=10 while an 8-GPU job drains on it; a
        # 16-GPU job arriving at t=20 must wait for the restore at t=100.
        spec = make_spec(nodes=2, gpn=8)
        trace = make_trace([(0, 8, 50), (20, 16, 30)])
        events = _node_events_table([(10, 0, 0), (100, 0, 1)])
        ref = Simulator(spec, FIFOScheduler(), mode="reference").run(
            trace, node_events=events
        )
        fast = Simulator(spec, FIFOScheduler()).run(trace, node_events=events)
        assert_replays_identical(fast, ref)
        assert ref.start_times.tolist() == [0.0, 100.0]
        assert ref.end_times.tolist() == [50.0, 130.0]

    def test_no_events_table_matches_none(self):
        spec = make_spec(nodes=2)
        trace = make_trace([(0, 4, 30), (5, 8, 20)])
        plain = Simulator(spec, FIFOScheduler()).run(trace)
        empty = Simulator(spec, FIFOScheduler()).run(
            trace, node_events=_node_events_table([])
        )
        assert_replays_identical(plain, empty)

    def test_synthesized_events_round_trip(self):
        from repro.traces.synth import synthesize_node_events

        spec = make_spec(nodes=3, vcs=2)
        trace = _random_trace(np.random.default_rng(7), 2)
        events = synthesize_node_events(6, 5000.0, seed=11,
                                        burst_rate_per_day=40.0)
        assert len(events)
        ref = Simulator(spec, FIFOScheduler(), mode="reference").run(
            trace, node_events=events
        )
        fast = Simulator(spec, FIFOScheduler()).run(trace, node_events=events)
        assert_replays_identical(fast, ref)

    @pytest.mark.parametrize(
        "rows, match",
        [
            ([(5, 0, 0), (3, 0, 0)], "already down"),
            ([(5, 0, 1)], "is not down"),
            ([(5, 99, 0)], "outside"),
            ([(float("nan"), 0, 0)], "finite"),
            ([(5, 0, 2)], "must be 0"),
        ],
    )
    def test_invalid_sequences_identical_errors(self, rows, match):
        spec = make_spec(nodes=2)
        trace = make_trace([(0, 4, 30)])
        events = _node_events_table(rows)
        with pytest.raises(ValueError, match=match) as ref_exc:
            Simulator(spec, FIFOScheduler(), mode="reference").run(
                trace, node_events=events
            )
        with pytest.raises(ValueError) as fast_exc:
            Simulator(spec, FIFOScheduler()).run(trace, node_events=events)
        assert str(fast_exc.value) == str(ref_exc.value)

    def test_normalize_orders_and_maps_vcs(self):
        spec = make_spec(nodes=2, vcs=2)  # nodes 0-1 vc0, 2-3 vc1
        events = _node_events_table([(30, 2, 0), (10, 0, 0), (40, 2, 1), (20, 0, 1)])
        norm = normalize_node_events(spec, events)
        assert norm == [
            (10.0, 0, 0, 0), (20.0, 0, 0, 1), (30.0, 1, 0, 0), (40.0, 1, 0, 1),
        ]


@pytest.mark.parametrize("sched_cls", [FIFOScheduler, SRTFScheduler])
class TestClusterParity:
    """The paper's replay protocol: evaluation month, real topologies."""

    @pytest.mark.parametrize(
        "cluster", ["Venus", "Earth", "Saturn", "Uranus"]
    )
    def test_helios_evaluation_month(self, cluster, sched_cls):
        from repro.experiments import common
        from repro.traces import slice_period

        gpu = common.cluster_gpu_trace(cluster)
        sept = slice_period(
            gpu,
            common.EVAL_MONTH * common.MONTH_SECONDS,
            (common.EVAL_MONTH + 1) * common.MONTH_SECONDS,
        )
        spec = common.cluster_spec(cluster)
        ref = Simulator(spec, sched_cls(), mode="reference").run(sept)
        fast = Simulator(spec, sched_cls()).run(sept)
        assert_replays_identical(fast, ref)

    def test_philly_window(self, sched_cls):
        from repro.experiments import common
        from repro.traces import SECONDS_PER_DAY, slice_period

        trace = slice_period(common.philly_trace(), 0, 20 * SECONDS_PER_DAY)
        spec = common.philly_generator().spec
        ref = Simulator(spec, sched_cls(), mode="reference").run(trace)
        fast = Simulator(spec, sched_cls()).run(trace)
        assert_replays_identical(fast, ref)


class TestModeKnob:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            Simulator(make_spec(), FIFOScheduler(), mode="turbo")

    def test_restrict_slices_jobs_keeps_telemetry(self):
        trace = make_trace([(0, 8, 100), (10, 4, 50), (20, 2, 25)])
        res = Simulator(make_spec(nodes=2), FIFOScheduler()).run(trace)
        sub = res.restrict(np.array([1, 2]))
        assert len(sub.trace) == 2
        assert sub.start_times.tolist() == res.start_times[1:].tolist()
        assert sub.queue_delays.tolist() == res.queue_delays[1:].tolist()
        # cluster telemetry stays whole: it describes everything that ran
        assert len(sub.node_intervals) == len(res.node_intervals)
        assert sub.num_nodes == res.num_nodes

    def test_restrict_boolean_mask(self):
        trace = make_trace([(0, 8, 100), (10, 4, 50)])
        res = Simulator(make_spec(), FIFOScheduler()).run(trace)
        sub = res.restrict(np.array([False, True]))
        assert len(sub.trace) == 1
        assert sub.end_times.tolist() == [res.end_times[1]]
