"""Shared fixtures for the test suite.

The simulator builders live in :mod:`helpers` (``tests/helpers.py``) so
test modules can import them absolutely; see that module's docstring for
why they cannot live in ``conftest.py`` itself.  They are re-exported
here, and wrapped as fixtures, for tests that prefer injection over
imports.
"""

import pytest

from helpers import make_spec, make_trace  # noqa: F401  (re-export)


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current payloads "
        "instead of asserting against them (see tests/test_goldens.py)",
    )


@pytest.fixture
def sim_spec_factory():
    """Factory fixture for :func:`helpers.make_spec`."""
    return make_spec


@pytest.fixture
def sim_trace_factory():
    """Factory fixture for :func:`helpers.make_trace`."""
    return make_trace
