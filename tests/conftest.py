"""Shared fixtures for the test suite.

The simulator builders live in :mod:`helpers` (``tests/helpers.py``) so
test modules can import them absolutely; see that module's docstring for
why they cannot live in ``conftest.py`` itself.  They are re-exported
here, and wrapped as fixtures, for tests that prefer injection over
imports.
"""

import pytest

from helpers import make_spec, make_trace  # noqa: F401  (re-export)


@pytest.fixture
def sim_spec_factory():
    """Factory fixture for :func:`helpers.make_spec`."""
    return make_spec


@pytest.fixture
def sim_trace_factory():
    """Factory fixture for :func:`helpers.make_trace`."""
    return make_trace
