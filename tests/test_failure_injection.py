"""Failure-injection tests: corrupt inputs must fail loudly, and
degenerate-but-legal inputs must degrade gracefully."""

import numpy as np
import pytest

from repro.energy import CESService, DRSParams, NodeDemandForecaster, run_drs
from repro.frame import Table
from repro.ml import ARIMAForecaster, FourierForecaster, GBDTParams, GBDTRegressor
from repro.sched import FIFOScheduler, QSSFScheduler, RollingEstimator, Scheduler
from repro.sim import Simulator
from repro.traces import (
    ClusterSpec,
    TraceValidationError,
    VCSpec,
    validate_trace,
)

from helpers import make_spec, make_trace


class BrokenScheduler(Scheduler):
    """Returns the wrong number of priorities."""

    name = "broken"

    def priorities(self, trace):
        return np.zeros(max(len(trace) - 1, 0))


class NaNScheduler(Scheduler):
    name = "nan"

    def priorities(self, trace):
        return np.full(len(trace), np.nan)


class TestSimulatorRejection:
    def test_broken_scheduler_detected(self):
        with pytest.raises(ValueError, match="one value per job"):
            Simulator(make_spec(), BrokenScheduler()).run(make_trace([(0, 1, 10)]))

    def test_nan_priorities_still_terminate(self):
        """NaN priorities are legal floats; the run must still complete
        every job (heap ordering with NaN is arbitrary but total)."""
        res = Simulator(make_spec(), NaNScheduler()).run(
            make_trace([(0, 1, 10), (0, 1, 10)])
        )
        assert np.all(np.isfinite(res.end_times))

    def test_zero_gpu_job_rejected(self):
        with pytest.raises(ValueError):
            Simulator(make_spec(), FIFOScheduler()).run(make_trace([(0, 0, 5)]))

    def test_job_larger_than_vc_rejected_before_running(self):
        spec = ClusterSpec(
            name="T", gpus_per_node=8,
            vcs=(VCSpec("vc0", num_nodes=1, gpus_per_node=8),),
        )
        with pytest.raises(ValueError, match="demands"):
            Simulator(spec, FIFOScheduler()).run(make_trace([(0, 16, 5)]))


class TestTraceCorruption:
    def _valid(self):
        return make_trace([(0, 1, 10), (5, 2, 20)])

    def test_duplicate_job_ids(self):
        t = self._valid()
        t = t.with_column("job_id", np.array(["same", "same"]))
        with pytest.raises(TraceValidationError):
            validate_trace(t)

    def test_negative_gpu(self):
        t = self._valid().with_column("gpu_num", np.array([-1, 2], dtype=np.int64))
        with pytest.raises(TraceValidationError):
            validate_trace(t)

    def test_zero_duration(self):
        t = self._valid().with_column("duration", np.array([0.0, 5.0]))
        with pytest.raises(TraceValidationError):
            validate_trace(t)

    def test_missing_column(self):
        t = self._valid().without_columns("status")
        with pytest.raises(ValueError, match="missing columns"):
            validate_trace(t)


class TestDegenerateLearning:
    def test_gbdt_constant_target(self):
        X = np.random.default_rng(0).normal(size=(100, 3))
        y = np.full(100, 5.0)
        model = GBDTRegressor(GBDTParams(n_estimators=5)).fit(X, y)
        np.testing.assert_allclose(model.predict(X), 5.0, atol=1e-9)

    def test_gbdt_single_row(self):
        model = GBDTRegressor(GBDTParams(n_estimators=3, min_samples_leaf=1)).fit(
            np.zeros((1, 2)), np.array([3.0])
        )
        assert model.predict(np.zeros((1, 2)))[0] == pytest.approx(3.0)

    def test_gbdt_nan_features_tolerated_in_binning(self):
        X = np.random.default_rng(0).normal(size=(50, 2))
        X[::7, 0] = np.nan
        y = np.arange(50.0)
        model = GBDTRegressor(GBDTParams(n_estimators=3)).fit(X, y)
        assert np.all(np.isfinite(model.predict(X)))

    def test_arima_constant_series(self):
        fc = ARIMAForecaster(p=2, d=0).fit(np.full(100, 7.0)).forecast(5)
        np.testing.assert_allclose(fc, 7.0, atol=1e-6)

    def test_fourier_constant_series(self):
        fc = FourierForecaster(periods=(24,)).fit(np.full(100, 3.0)).forecast(5)
        np.testing.assert_allclose(fc, 3.0, atol=1e-6)

    def test_forecaster_constant_demand(self):
        series = np.full(1500, 10.0)
        model = NodeDemandForecaster(horizon_bins=3).fit(series)
        pred = model.predict_at(series, np.array([1200, 1300]))
        np.testing.assert_allclose(pred, 10.0, atol=0.5)

    def test_rolling_estimator_pathological_names(self):
        est = RollingEstimator()
        est.update("u", "", 1, 10.0)
        est.update("u", "####", 1, 20.0)
        assert est.estimate("u", "", 1) > 0

    def test_qssf_on_tiny_history(self):
        hist = make_trace([(0, 1, 10)])
        sched = QSSFScheduler(hist, lam=1.0)
        out = sched.priorities(make_trace([(1, 2, 5)]))
        assert out.shape == (1,)


class TestDRSEdgeCases:
    def test_zero_demand_everywhere(self):
        d = np.zeros(200)
        out = run_drs(d, d.copy(), total_nodes=50, params=DRSParams.scaled(50))
        assert out.avg_parked_nodes > 0
        assert out.wake_events == 0

    def test_full_demand_everywhere(self):
        d = np.full(200, 50.0)
        out = run_drs(d, d.copy(), total_nodes=50, params=DRSParams.scaled(50))
        assert out.avg_parked_nodes == pytest.approx(0.0)
        assert out.utilization_ces == pytest.approx(1.0)

    def test_demand_spike_recovery(self):
        """Park, spike wakes everything needed, park again."""
        d = np.concatenate([np.full(100, 40.0), np.full(3, 10.0),
                            np.full(5, 45.0), np.full(100, 10.0)])
        fc = d.copy()
        out = run_drs(d, fc, total_nodes=50, params=DRSParams.scaled(50))
        assert np.all(out.active >= d)

    def test_ces_service_rejects_short_training(self):
        from repro.sched import SJFScheduler
        from helpers import make_spec as ms, make_trace as mt

        res = Simulator(ms(), SJFScheduler()).run(mt([(0, 1, 100)]))
        with pytest.raises(ValueError):
            CESService().evaluate(res, eval_start=50.0, eval_end=100.0)


class TestServeLayerCorruption:
    """Corrupt serving inputs fail loudly; model failures degrade
    (covered in test_chaos_recovery.py) but bad data never does."""

    def _stream(self):
        from repro.serve import EventStream

        from helpers import make_trace as mt

        return EventStream.from_trace(
            mt([(0, 1, 10), (5, 2, 20)]), cluster="T", bin_seconds=10
        )

    def test_finish_before_submit_rejected(self):
        from repro.serve import EventStream

        from helpers import make_trace as mt

        t = mt([(100, 1, 10)]).with_column("duration", np.array([-50.0]))
        with pytest.raises(ValueError, match="corrupt event stream"):
            EventStream.from_trace(t, cluster="T")

    def test_nan_demand_rejected_at_construction(self):
        stream = self._stream()
        bad = stream.demand.copy()
        bad[1] = np.nan
        from repro.serve import EventStream

        with pytest.raises(ValueError, match="corrupt node-demand series"):
            EventStream(
                "T", stream.jobs, stream.times, stream.kinds, stream.refs,
                grid=stream.grid, demand=bad,
            )

    def test_nan_demand_mid_stream_raises_in_serve_loop(self):
        """Demand corrupted after validation (e.g. a bad producer) must
        abort the shard loudly, not silently degrade the CES path."""
        from repro.serve import ShardTask, build_shard

        from repro.experiments.serving import smoke_serve_config

        task = ShardTask(
            cluster="Venus", config=smoke_serve_config(),
            history_days=14, stream_days=1.0, max_jobs=200,
        )
        server, stream = build_shard(task)
        k = len(stream.demand) // 2
        stream.demand[k] = np.nan
        with pytest.raises(ValueError, match="corrupt node-demand sample at bin"):
            server.run(stream)
