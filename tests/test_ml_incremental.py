"""Incremental-fit protocol tests (the rolling-origin evaluation engine).

Three layers of guarantees, from hard to soft:

* ARIMA — ``fit(head); update(tail)`` is *bit-exact* with ``fit(full)``
  (sequential moment accumulation; the incremental path is not an
  approximation).
* Holt-Winters / Fourier — state carry-forward reproduces a scratch fit
  with the same parameters exactly (HW) / to floating-point error
  (Fourier's moment-based ridge).
* LSTM / GBDT — warm-start continues training rather than replaying it,
  so scores are only required to stay in a tight band around the scratch
  (correctness-oracle) evaluation.

Plus: the fold-parallel comparison must return results identical to the
serial path for any worker count.
"""

import numpy as np
import pytest

from repro.energy import GBDTSeriesForecaster
from repro.energy.forecaster import ForecastFeatures
from repro.ml import (
    ARIMAForecaster,
    FourierForecaster,
    HoltWintersForecaster,
    LSTMForecaster,
    LSTMParams,
    RidgeRegressor,
    compare_forecasters,
    evaluate_forecaster,
    supports_update,
)
from repro.ml.gbdt import GBDTParams, GBDTRegressor


def _series(n=900, period=24, noise=0.3, seed=1):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (
        10.0
        + 3.0 * np.sin(2 * np.pi * t / period)
        + np.cos(4 * np.pi * t / period)
        + noise * rng.normal(size=n)
    )


EVAL = dict(initial=600, horizon=24, step=48)

#: Small feature recipe so the GBDT adapter fits on short test series
#: (the default recipe's longest lag is a 1008-bin week).
SMALL_FEATURES = ForecastFeatures(bin_seconds=3600, lags=(1, 2, 3, 24, 48), windows=(6, 24))


class TestARIMAIncremental:
    @pytest.mark.parametrize("d", [0, 1])
    def test_update_bit_exact_with_batch_fit(self, d):
        y = _series()
        batch = ARIMAForecaster(p=24, d=d).fit(y)
        inc = ARIMAForecaster(p=24, d=d).fit(y[:700]).update(y[700:800]).update(y[800:])
        assert inc.intercept_ == batch.intercept_
        np.testing.assert_array_equal(inc.coef_, batch.coef_)
        np.testing.assert_array_equal(inc.forecast(24), batch.forecast(24))

    def test_single_point_updates_bit_exact(self):
        y = _series(n=120)
        batch = ARIMAForecaster(p=6, d=0).fit(y)
        inc = ARIMAForecaster(p=6, d=0).fit(y[:100])
        for i in range(100, 120):
            inc.update(y[i : i + 1])
        np.testing.assert_array_equal(inc.coef_, batch.coef_)

    def test_evaluate_incremental_equals_scratch(self):
        """The fold engine's warm path is exact for ARIMA, so the rolling
        SMAPE must match the scratch oracle to the last bit."""
        y = _series()
        f = lambda: ARIMAForecaster(p=24, d=0)
        assert evaluate_forecaster(f, y, mode="auto", **EVAL) == evaluate_forecaster(
            f, y, mode="scratch", **EVAL
        )

    def test_update_validation(self):
        with pytest.raises(RuntimeError):
            ARIMAForecaster(p=2, d=0).update(np.arange(5.0))
        model = ARIMAForecaster(p=2, d=0).fit(np.arange(50.0))
        with pytest.raises(ValueError):
            model.update(np.ones((2, 2)))
        coef_before = model.coef_.copy()
        model.update(np.empty(0))  # no-op
        np.testing.assert_array_equal(model.coef_, coef_before)


class TestHoltWintersIncremental:
    def test_update_matches_scratch_with_same_params(self):
        """With fixed smoothing parameters the carried-forward state is
        exactly the state a scratch fit reaches on the full series."""
        y = _series()
        kw = dict(alpha=0.5, beta=0.1, gamma=0.2)
        batch = HoltWintersForecaster(24, **kw).fit(y)
        inc = HoltWintersForecaster(24, **kw).fit(y[:700]).update(y[700:])
        np.testing.assert_array_equal(inc.forecast(48), batch.forecast(48))

    def test_warm_rolling_smape_near_scratch(self):
        """Grid-searched parameters may differ per fold under scratch;
        the warm path keeps the initial fold's — scores stay close."""
        y = _series()
        f = lambda: HoltWintersForecaster(season_length=24)
        cold = evaluate_forecaster(f, y, mode="scratch", **EVAL)
        warm = evaluate_forecaster(f, y, mode="auto", **EVAL)
        assert abs(warm - cold) <= max(0.15 * cold, 0.5)

    def test_update_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            HoltWintersForecaster(24).update(np.arange(10.0))


class TestFourierIncremental:
    def test_update_matches_batch_coefficients(self):
        y = _series()
        batch = FourierForecaster(periods=(24,)).fit(y)
        inc = FourierForecaster(periods=(24,)).fit(y[:700]).update(y[700:])
        np.testing.assert_allclose(
            inc.forecast(48), batch.forecast(48), rtol=1e-9, atol=1e-9
        )

    def test_warm_rolling_smape_matches_scratch(self):
        y = _series()
        f = lambda: FourierForecaster(periods=(24,))
        cold = evaluate_forecaster(f, y, mode="scratch", **EVAL)
        warm = evaluate_forecaster(f, y, mode="auto", **EVAL)
        assert warm == pytest.approx(cold, rel=1e-6)

    def test_update_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FourierForecaster().update(np.arange(10.0))


class TestRidgeIncremental:
    def test_update_matches_batch(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 5))
        y = X @ np.array([1.0, -2.0, 0.5, 0.0, 3.0]) + 0.1 * rng.normal(size=300)
        batch = RidgeRegressor(alpha=0.5).fit(X, y)
        inc = RidgeRegressor(alpha=0.5).fit(X[:200], y[:200]).update(X[200:], y[200:])
        np.testing.assert_allclose(inc.coef_, batch.coef_, rtol=1e-8)
        assert inc.intercept_ == pytest.approx(batch.intercept_, rel=1e-10)

    def test_update_validation(self):
        with pytest.raises(RuntimeError):
            RidgeRegressor().update(np.ones((2, 2)), np.ones(2))
        model = RidgeRegressor().fit(np.ones((5, 2)) * np.arange(5)[:, None], np.arange(5.0))
        with pytest.raises(ValueError):
            model.update(np.ones((2, 3)), np.ones(2))  # feature count changed


class TestLSTMIncremental:
    def test_warm_rolling_smape_within_band(self):
        y = _series()
        f = lambda: LSTMForecaster(
            LSTMParams(window=24, hidden=8, epochs=5, update_epochs=2)
        )
        cold = evaluate_forecaster(f, y, mode="scratch", **EVAL)
        warm = evaluate_forecaster(f, y, mode="auto", **EVAL)
        # Warm-start continues training (typically scoring a bit better);
        # it must stay in a tight band around the scratch oracle.
        assert abs(warm - cold) / cold < 0.30

    def test_update_is_deterministic(self):
        y = _series(n=300)
        p = LSTMParams(window=12, hidden=8, epochs=3, update_epochs=2, random_state=7)
        f1 = LSTMForecaster(p).fit(y[:250]).update(y[250:]).forecast(5)
        f2 = LSTMForecaster(p).fit(y[:250]).update(y[250:]).forecast(5)
        np.testing.assert_allclose(f1, f2)

    def test_update_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LSTMForecaster().update(np.arange(10.0))

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            LSTMForecaster(mode="turbo")

    def test_fast_update_within_band_of_reference(self):
        """Fold-batched fast updates vs the scratch per-window reference
        schedule: the two fine-tunes are different algorithms, so scores
        agree within the rolling-origin tolerance band only."""
        y = _series()
        p = LSTMParams(window=24, hidden=8, epochs=5, update_epochs=2)
        fast = evaluate_forecaster(
            lambda: LSTMForecaster(p, mode="fast"), y, mode="auto", **EVAL
        )
        ref = evaluate_forecaster(
            lambda: LSTMForecaster(p, mode="reference"), y, mode="auto", **EVAL
        )
        assert abs(fast - ref) / ref < 0.30

    def test_fast_update_consumes_no_rng(self):
        """The fold-batched path is full-batch: the shuffling RNG state
        must be untouched so later reference epochs are unperturbed."""
        y = _series(n=300)
        p = LSTMParams(window=12, hidden=8, epochs=2, update_epochs=2)
        model = LSTMForecaster(p, mode="fast").fit(y[:250])
        before = model._rng.bit_generator.state
        model.update(y[250:])
        assert model._rng.bit_generator.state == before

    def test_fast_update_batches_only_new_windows(self):
        """One loss entry per fine-tune step, each over just the windows
        targeting appended points."""
        y = _series(n=300)
        p = LSTMParams(window=12, hidden=8, epochs=2, update_epochs=3)
        model = LSTMForecaster(p, mode="fast").fit(y[:250])
        n_loss = len(model.loss_curve_)
        model.update(y[250:])
        assert len(model.loss_curve_) == n_loss + p.update_epochs

    def test_fast_update_learns_tail_signal(self):
        """Fine-tuning on a level-shifted tail must move forecasts toward
        the new level (the batched gradient actually applies)."""
        y = _series(n=400)
        p = LSTMParams(window=24, hidden=8, epochs=5, update_epochs=10)
        stale = LSTMForecaster(p, mode="fast").fit(y[:340])
        tuned = LSTMForecaster(p, mode="fast").fit(y[:340])
        tuned.update(y[340:] + 4.0)
        # compare against the same model continuing without the shift
        stale.update(y[340:])
        assert tuned.forecast(10).mean() > stale.forecast(10).mean()


class TestGBDTIncremental:
    def test_fit_more_grows_ensemble_and_improves_fit(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 3))
        y = X[:, 0] ** 2 + X[:, 1]
        model = GBDTRegressor(GBDTParams(n_estimators=30)).fit(X[:300], y[:300])
        before = len(model.trees_)
        model.fit_more(X[300:], y[300:], n_more=10)
        assert len(model.trees_) == before + 10
        # continued boosting keeps driving training MSE down
        assert model.train_scores_[-1] <= model.train_scores_[before - 1] + 1e-12

    def test_fit_more_requires_fit(self):
        with pytest.raises(RuntimeError):
            GBDTRegressor().fit_more(np.ones((2, 2)), np.ones(2), 1)

    def test_fit_more_zero_stages_appends_rows_only(self):
        """n_more=0: the new rows join the training state but the
        ensemble and its predictions are untouched."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 3))
        y = X[:, 0] ** 2 + X[:, 1]
        model = GBDTRegressor(GBDTParams(n_estimators=20)).fit(X[:200], y[:200])
        before = model.predict(X)
        n_trees = len(model.trees_)
        model.fit_more(X[200:], y[200:], n_more=0)
        assert len(model.trees_) == n_trees
        np.testing.assert_array_equal(model.predict(X), before)
        assert model._Xb_train.shape[0] == 300
        # ...and a later continuation trains on the grown matrix
        model.fit_more(np.zeros((0, 3)), np.zeros(0), n_more=5)
        assert len(model.trees_) == n_trees + 5

    @pytest.mark.parametrize("mode", ["fast", "reference"])
    def test_fit_more_rng_continuation_parity(self, mode):
        """With subsample < 1 the boosting RNG must continue across
        fit_more: fit(K) + fit_more(0 rows, J) is bitwise one fit(K+J)."""
        rng = np.random.default_rng(5)
        X = rng.normal(size=(400, 4))
        y = X[:, 0] + 0.5 * X[:, 1] ** 2 + 0.1 * rng.normal(size=400)
        split = GBDTRegressor(
            GBDTParams(n_estimators=12, subsample=0.7, random_state=9), mode=mode
        ).fit(X, y)
        split.fit_more(np.zeros((0, 4)), np.zeros(0), n_more=8)
        joint = GBDTRegressor(
            GBDTParams(n_estimators=20, subsample=0.7, random_state=9), mode=mode
        ).fit(X, y)
        np.testing.assert_array_equal(split.predict(X), joint.predict(X))
        assert split.train_scores_ == joint.train_scores_

    def test_fit_more_fast_reference_parity(self):
        """Continuation with appended rows (cache append path) stays
        byte-identical across modes."""
        rng = np.random.default_rng(6)
        X = rng.normal(size=(400, 4))
        y = X[:, 0] + 0.1 * rng.normal(size=400)
        p = GBDTParams(n_estimators=10, subsample=0.8, random_state=2)
        fast = GBDTRegressor(p, mode="fast").fit(X[:300], y[:300])
        ref = GBDTRegressor(p, mode="reference").fit(X[:300], y[:300])
        fast.fit_more(X[300:], y[300:], n_more=6)
        ref.fit_more(X[300:], y[300:], n_more=6)
        np.testing.assert_array_equal(fast.predict(X), ref.predict(X))
        assert fast.train_scores_ == ref.train_scores_

    def test_fit_more_rejects_early_stopped(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = X[:, 0] + 0.01 * rng.normal(size=200)
        model = GBDTRegressor(
            GBDTParams(n_estimators=50, early_stopping_rounds=3)
        ).fit(X[:150], y[:150], eval_set=(X[150:], y[150:]))
        with pytest.raises(RuntimeError, match="early-stopped"):
            model.fit_more(X[:10], y[:10], 1)

    def test_series_forecaster_warm_within_band(self):
        y = _series()
        f = lambda: GBDTSeriesForecaster(features=SMALL_FEATURES)
        cold = evaluate_forecaster(f, y, mode="scratch", **EVAL)
        warm = evaluate_forecaster(f, y, mode="auto", **EVAL)
        assert abs(warm - cold) / cold < 0.30

    def test_series_update_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GBDTSeriesForecaster().update(np.arange(10.0))

    def test_extend_without_new_rows_is_noop(self):
        """Appending too few points to unlock a training row must leave
        the ensemble untouched (no phantom boosting stages)."""
        y = _series()
        model = GBDTSeriesForecaster(features=SMALL_FEATURES).fit(y)
        n_trees = len(model.inner.model.trees_)
        model.inner.extend(y)  # same series: zero new rows
        assert len(model.inner.model.trees_) == n_trees

    def test_pickle_drops_continuation_buffers(self):
        """Pickling ships a predict-only model: same predictions, no
        fit_more continuation (the buffers are in-process state)."""
        import pickle

        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = X[:, 0] + 0.1 * rng.normal(size=200)
        model = GBDTRegressor(GBDTParams(n_estimators=10)).fit(X, y)
        clone = pickle.loads(pickle.dumps(model))
        np.testing.assert_array_equal(clone.predict(X), model.predict(X))
        with pytest.raises(RuntimeError):
            clone.fit_more(X[:5], y[:5], 1)

    def test_build_at_matches_build(self):
        y = _series(n=400)
        feats = SMALL_FEATURES
        full = feats.build(y)
        some = np.array([0, 1, 5, 49, 123, 399])
        np.testing.assert_array_equal(feats.build_at(y, some), full[some])
        np.testing.assert_array_equal(feats.build_at(y, np.arange(y.size)), full)


class _NoUpdateModel:
    """Minimal fit/forecast model without the incremental protocol."""

    def fit(self, y):
        self._last = float(np.asarray(y)[-1])
        return self

    def forecast(self, horizon):
        return np.full(horizon, self._last)


class TestEngineModes:
    def test_supports_update_probe(self):
        assert supports_update(ARIMAForecaster(p=2))
        assert not supports_update(_NoUpdateModel())

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            evaluate_forecaster(_NoUpdateModel, _series(200), 100, 10, mode="warp")

    def test_incremental_mode_requires_update(self):
        with pytest.raises(TypeError, match="does not implement update"):
            evaluate_forecaster(
                _NoUpdateModel, _series(200), 100, 10, mode="incremental"
            )

    def test_auto_falls_back_to_scratch(self):
        y = _series(200)
        auto = evaluate_forecaster(_NoUpdateModel, y, 100, 10, mode="auto")
        cold = evaluate_forecaster(_NoUpdateModel, y, 100, 10, mode="scratch")
        assert auto == cold


class TestCompareParallel:
    MODELS = {
        "fourier": lambda: FourierForecaster(periods=(24,)),
        "ar": lambda: ARIMAForecaster(p=4, d=0),
        "hw": lambda: HoltWintersForecaster(season_length=24),
    }

    def test_parallel_identical_to_serial(self):
        y = _series(n=500)
        serial = compare_forecasters(self.MODELS, y, 300, 24, jobs=1)
        forked = compare_forecasters(self.MODELS, y, 300, 24, jobs=3)
        assert serial == forked
        assert list(serial) == list(self.MODELS)  # input order preserved

    def test_scratch_mode_passthrough(self):
        y = _series(n=500)
        warm = compare_forecasters(self.MODELS, y, 300, 24, jobs=2, mode="auto")
        cold = compare_forecasters(self.MODELS, y, 300, 24, jobs=2, mode="scratch")
        # these three comparators are exact/near-exact incrementally
        for name in self.MODELS:
            assert warm[name] == pytest.approx(cold[name], rel=0.15)
