"""Tests for interval -> time-series conversion and rolling ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    TimeGrid,
    hourly_profile,
    interval_concurrency,
    interval_load,
    resample_mean,
    rolling_mean,
    rolling_std,
)


class TestTimeGrid:
    def test_covering(self):
        g = TimeGrid.covering(0.0, 100.0, 10.0)
        assert g.bins == 10
        assert g.edges[0] == 0.0 and g.edges[-1] == 100.0

    def test_covering_rounds_up(self):
        g = TimeGrid.covering(0.0, 95.0, 10.0)
        assert g.bins == 10

    def test_covering_invalid(self):
        with pytest.raises(ValueError):
            TimeGrid.covering(10.0, 10.0, 1.0)

    def test_index_of_clips(self):
        g = TimeGrid(0.0, 10.0, 5)
        idx = g.index_of(np.array([-5.0, 0.0, 49.9, 200.0]))
        assert idx.tolist() == [0, 0, 4, 4]

    def test_centers(self):
        g = TimeGrid(0.0, 2.0, 3)
        assert g.centers.tolist() == [1.0, 3.0, 5.0]


class TestIntervalLoad:
    def test_full_bin_interval(self):
        g = TimeGrid(0.0, 10.0, 4)
        # one unit-weight job covering exactly bin 1
        load = interval_load(g, np.array([10.0]), np.array([20.0]))
        assert load.tolist() == [0.0, 1.0, 0.0, 0.0]

    def test_partial_bins(self):
        g = TimeGrid(0.0, 10.0, 3)
        load = interval_load(g, np.array([5.0]), np.array([25.0]))
        np.testing.assert_allclose(load, [0.5, 1.0, 0.5])

    def test_weighting(self):
        g = TimeGrid(0.0, 10.0, 2)
        load = interval_load(
            g, np.array([0.0]), np.array([20.0]), weights=np.array([8.0])
        )
        np.testing.assert_allclose(load, [8.0, 8.0])

    def test_within_one_bin(self):
        g = TimeGrid(0.0, 10.0, 2)
        load = interval_load(g, np.array([2.0]), np.array([4.0]))
        np.testing.assert_allclose(load, [0.2, 0.0])

    def test_clip_outside_grid(self):
        g = TimeGrid(0.0, 10.0, 2)
        load = interval_load(g, np.array([-100.0]), np.array([100.0]))
        np.testing.assert_allclose(load, [1.0, 1.0])

    def test_empty(self):
        g = TimeGrid(0.0, 10.0, 2)
        load = interval_load(g, np.array([]), np.array([]))
        assert load.tolist() == [0.0, 0.0]

    def test_conservation_of_gpu_time(self):
        """Total load*dt equals total weighted duration (inside the grid)."""
        rng = np.random.default_rng(0)
        g = TimeGrid(0.0, 7.0, 50)
        s = rng.uniform(0, 300, 200)
        e = s + rng.uniform(0.1, 60, 200)
        e = np.minimum(e, 350.0)
        w = rng.integers(1, 9, 200).astype(float)
        load = interval_load(g, s, e, w)
        expected = np.sum(w * (np.clip(e, 0, 350) - np.clip(s, 0, 350)))
        assert load.sum() * g.dt == pytest.approx(expected, rel=1e-9)


class TestConcurrency:
    def test_simple(self):
        g = TimeGrid(0.0, 1.0, 5)
        s = np.array([0.0, 1.0, 1.0])
        e = np.array([3.0, 2.0, 5.0])
        conc = interval_concurrency(g, s, e)
        assert conc.tolist() == [1.0, 3.0, 2.0, 1.0, 1.0]

    def test_weighted(self):
        g = TimeGrid(0.0, 1.0, 3)
        conc = interval_concurrency(
            g, np.array([0.0]), np.array([2.0]), weights=np.array([4.0])
        )
        assert conc.tolist() == [4.0, 4.0, 0.0]


class TestRolling:
    def test_rolling_mean_basic(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(rolling_mean(x, 2), [1.0, 1.5, 2.5, 3.5])

    def test_rolling_mean_window_one(self):
        x = np.array([5.0, 6.0])
        np.testing.assert_allclose(rolling_mean(x, 1), x)

    def test_rolling_mean_invalid_window(self):
        with pytest.raises(ValueError):
            rolling_mean(np.array([1.0]), 0)

    def test_rolling_std_constant(self):
        np.testing.assert_allclose(rolling_std(np.full(10, 3.0), 4), np.zeros(10))

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        window=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_rolling_mean_matches_reference(self, n, window, seed):
        x = np.random.default_rng(seed).normal(size=n)
        got = rolling_mean(x, window)
        ref = [x[max(0, i - window + 1) : i + 1].mean() for i in range(n)]
        np.testing.assert_allclose(got, ref, atol=1e-9)


class TestProfiles:
    def test_hourly_profile_counts(self):
        times = np.array([0, 3600, 3600, 7200], dtype=np.int64)
        prof = hourly_profile(times)
        assert prof[0] == 1 and prof[1] == 2 and prof[2] == 1

    def test_hourly_profile_values(self):
        times = np.array([0, 0, 3600], dtype=np.int64)
        vals = np.array([1.0, 3.0, 10.0])
        prof = hourly_profile(times, vals)
        assert prof[0] == 2.0 and prof[1] == 10.0

    def test_hourly_profile_wraps_days(self):
        day = 86400
        times = np.array([0, day, 2 * day], dtype=np.int64)
        prof = hourly_profile(times)
        assert prof[0] == 3

    def test_resample_mean(self):
        x = np.arange(10, dtype=float)
        np.testing.assert_allclose(resample_mean(x, 5), [2.0, 7.0])

    def test_resample_drops_tail(self):
        np.testing.assert_allclose(resample_mean(np.arange(7.0), 3), [1.0, 4.0])

    def test_resample_invalid(self):
        with pytest.raises(ValueError):
            resample_mean(np.arange(3.0), 0)
