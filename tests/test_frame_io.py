"""CSV round-trip tests for the frame IO layer."""

import numpy as np
import pytest

from repro.frame import Table, from_csv_string, read_csv, to_csv_string, write_csv


@pytest.fixture
def table():
    return Table(
        {
            "i": np.array([1, -2, 3], dtype=np.int64),
            "f": np.array([0.5, 1e-12, -3.25]),
            "s": np.array(["abc", "d e", "x,y"]),
            "b": np.array([True, False, True]),
        }
    )


def test_roundtrip_file(tmp_path, table):
    path = tmp_path / "t.csv"
    write_csv(table, path)
    back = read_csv(path)
    assert back.columns == table.columns
    assert back["i"].dtype.kind == "i"
    assert back["f"].dtype.kind == "f"
    assert back["b"].dtype.kind == "b"
    np.testing.assert_array_equal(back["i"], table["i"])
    np.testing.assert_allclose(back["f"], table["f"])
    assert back["s"].tolist() == table["s"].tolist()
    assert back["b"].tolist() == table["b"].tolist()


def test_roundtrip_string(table):
    text = to_csv_string(table)
    back = from_csv_string(text)
    assert back == Table({k: table[k] for k in table.columns})


def test_quoted_comma_preserved(table):
    back = from_csv_string(to_csv_string(table))
    assert back["s"][2] == "x,y"


def test_empty_table_roundtrip(tmp_path):
    t = Table({"a": np.array([], dtype=np.int64)})
    path = tmp_path / "empty.csv"
    write_csv(t, path)
    back = read_csv(path)
    assert back.columns == ["a"]
    assert len(back) == 0


def test_missing_kind_raises():
    with pytest.raises(ValueError, match="kind"):
        from_csv_string("plainheader\n1\n")


def test_unknown_kind_raises():
    with pytest.raises(ValueError, match="unknown column kind"):
        from_csv_string("a:z\n1\n")


def test_write_creates_parent_dirs(tmp_path, table):
    path = tmp_path / "nested" / "dir" / "t.csv"
    write_csv(table, path)
    assert path.exists()
