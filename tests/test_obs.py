"""Unit tests for the repro.obs tracing + metrics layer.

Covers the bounded histogram (accuracy, merge, serialization), span
nesting and re-parenting ids, the enable/disable cost contract, the
piggyback carrier protocol, JSONL/Chrome exports, and the
summarize/diff CLI.
"""

from __future__ import annotations

import json
import math
import pickle

import numpy as np
import pytest

from repro import obs
from repro.framework.parallel import fork_available, run_forked
from repro.obs.__main__ import main as obs_main
from repro.obs.metrics import Histogram
from repro.serve.telemetry import LatencyRecorder, LatencyStats, aggregate_reports

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires os.fork")


def _pool_work(n: int) -> int:
    """Module-level pool task (must be picklable) that records obs state."""
    obs.counter_add("pool.calls")
    obs.histogram("pool.value").record(float(n))
    return n * n


@pytest.fixture(autouse=True)
def clean_recorder():
    """Every test starts and ends with a pristine, disabled recorder."""
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


class TestHistogram:
    def test_quantiles_within_bin_resolution(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-4.0, sigma=1.2, size=50_000)
        h = Histogram()
        h.record_many(samples)
        assert h.count == samples.size
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(samples, q))
            assert h.quantile(q) == pytest.approx(exact, rel=0.06)
        assert h.mean == pytest.approx(float(samples.mean()))
        assert h.vmin == pytest.approx(float(samples.min()))
        assert h.vmax == pytest.approx(float(samples.max()))

    def test_scalar_matches_vectorized(self):
        values = [1e-7, 1e-6, 0.001, 0.5, 3.0, 999.0, 1e6]
        a, b = Histogram(), Histogram()
        for v in values:
            a.record(v)
        b.record_many(np.array(values))
        assert a.to_dict() == b.to_dict()

    def test_non_finite_dropped(self):
        h = Histogram()
        h.record(float("nan"))
        h.record(float("inf"))
        h.record_many(np.array([1.0, float("nan"), float("-inf"), 2.0]))
        assert h.count == 2
        assert h.total == pytest.approx(3.0)

    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(11)
        xs = rng.exponential(0.01, size=5000)
        whole = Histogram()
        whole.record_many(xs)
        left, right = Histogram(), Histogram()
        left.record_many(xs[:2000])
        right.record_many(xs[2000:])
        left.merge(right)
        assert left.to_dict() == whole.to_dict()

    def test_merge_rejects_mismatched_geometry(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram(lo=1.0, decades=6))

    def test_pickle_and_dict_round_trip(self):
        h = Histogram()
        h.record_many(np.array([0.001, 0.02, 5.0]))
        assert pickle.loads(pickle.dumps(h)).to_dict() == h.to_dict()
        assert Histogram.from_dict(h.to_dict()).to_dict() == h.to_dict()

    def test_bounded_memory(self):
        h = Histogram()
        h.record_many(np.random.default_rng(3).exponential(1.0, size=100_000))
        assert len(h.counts) == h.nbins + 2  # fixed: bins + under/overflow

    def test_quantile_of_empty_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0


class TestSpans:
    def test_nesting_and_parent_ids(self):
        obs.enable()
        with obs.trace("outer", layer=1):
            with obs.trace("inner"):
                pass
        spans = {s.name: s for s in obs.snapshot().spans}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].attrs["layer"] == 1
        assert spans["inner"].end >= spans["inner"].start

    def test_exception_marks_error_and_unwinds(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.trace("boom"):
                raise RuntimeError("x")
        (span,) = obs.snapshot().spans
        assert span.attrs["error"] == "RuntimeError"
        with obs.trace("after"):
            pass
        spans = {s.name: s for s in obs.snapshot().spans}
        assert spans["after"].parent_id is None  # stack fully unwound

    def test_disabled_records_nothing(self):
        with obs.trace("ghost"):
            obs.counter_add("ghost.counter")
            obs.histogram("ghost.hist").record(1.0)
            obs.gauge_set("ghost.gauge", 3.0)
        obs.record_span("ghost.span", 0.0, 1.0)
        assert obs.snapshot().empty

    def test_traced_decorator_checks_flag_per_call(self):
        @obs.traced("deco.fn")
        def fn():
            return 42

        assert fn() == 42  # disabled at call time
        obs.enable()
        assert fn() == 42
        assert [s.name for s in obs.snapshot().spans] == ["deco.fn"]


class TestCarrier:
    def test_round_trip_merges_on_absorb(self):
        obs.enable()
        obs.counter_add("work.items", 3)
        carried = obs.carry_result({"ok": True})
        assert obs.snapshot().empty  # drained into the carrier
        blob = pickle.dumps(carried)  # must survive the result pipe
        result = obs.absorb_result(pickle.loads(blob))
        assert result == {"ok": True}
        assert obs.snapshot().counters["work.items"] == 3

    def test_passthrough_when_disabled(self):
        payload = {"x": 1}
        assert obs.carry_result(payload) is payload
        assert obs.absorb_result(payload) is payload

    def test_split_carrier_defers_merge(self):
        obs.enable()
        obs.counter_add("n", 1)
        result, snap = obs.split_carrier(obs.carry_result("r"))
        assert result == "r"
        assert snap is not None and snap.counters["n"] == 1
        assert obs.snapshot().empty  # caller decides whether to merge

    @needs_fork
    def test_forked_pool_piggybacks_worker_metrics(self):
        obs.enable()
        assert run_forked(_pool_work, list(range(8)), jobs=4) == [
            n * n for n in range(8)
        ]
        snap = obs.snapshot()
        assert snap.counters["pool.calls"] == 8
        assert snap.histograms["pool.value"].count == 8


class TestExport:
    def _sample_snapshot(self):
        obs.enable()
        with obs.trace("parent", cluster="Venus"):
            with obs.trace("child"):
                pass
        obs.counter_add("events", 10)
        obs.gauge_set("rate", 2.5)
        obs.histogram("lat_s").record_many(np.array([0.001, 0.002, 0.004]))
        return obs.snapshot()

    def test_jsonl_round_trip(self, tmp_path):
        snap = self._sample_snapshot()
        path = obs.write_jsonl(snap, tmp_path / "trace.jsonl")
        back = obs.read_jsonl(path)
        # JSONL is written in start-time order; compare order-insensitively.
        assert {s.name for s in back.spans} == {s.name for s in snap.spans}
        assert back.counters == snap.counters
        assert back.gauges == snap.gauges
        assert back.histograms["lat_s"].to_dict() == snap.histograms["lat_s"].to_dict()

    def test_chrome_trace_validates_and_keeps_hierarchy(self, tmp_path):
        snap = self._sample_snapshot()
        doc = obs.chrome_trace(snap)
        obs.validate_chrome_trace(doc)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in complete}
        assert by_name["child"]["args"]["parent_id"] == by_name["parent"]["args"]["span_id"]
        assert by_name["parent"]["args"]["cluster"] == "Venus"
        # written file parses as strict JSON
        path = obs.write_chrome_trace(snap, tmp_path / "trace.chrome.json")
        obs.validate_chrome_trace(json.loads(path.read_text()))

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            obs.validate_chrome_trace({"nope": []})
        with pytest.raises(ValueError):
            obs.validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 1,
                                  "ts": -5, "dur": 1}]}
            )

    def test_dump_dir_writes_both_files(self, tmp_path):
        self._sample_snapshot()
        jsonl_path, chrome_path = obs.dump(tmp_path / "out")
        assert jsonl_path.exists() and chrome_path.exists()


class TestCLI:
    def _dump(self, tmp_path, name, n):
        obs.reset()
        obs.enable()
        with obs.trace("phase"):
            pass
        obs.counter_add("items", n)
        obs.histogram("lat_s").record_many(np.full(n, 0.002))
        path = obs.write_jsonl(obs.snapshot(), tmp_path / name)
        obs.reset()
        obs.disable()
        return path

    def test_summarize_renders(self, tmp_path, capsys):
        path = self._dump(tmp_path, "a.jsonl", 5)
        assert obs_main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "items" in out and "lat_s" in out

    def test_summarize_json(self, tmp_path, capsys):
        path = self._dump(tmp_path, "a.jsonl", 5)
        assert obs_main(["summarize", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counters"]["items"] == 5
        assert doc["histograms"]["lat_s"]["count"] == 5
        assert doc["spans"]["phase"]["count"] == 1

    def test_diff_flags_changed_metrics(self, tmp_path, capsys):
        old = self._dump(tmp_path, "old.jsonl", 5)
        new = self._dump(tmp_path, "new.jsonl", 9)
        assert obs_main(["diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "* items" in out
        assert "5 -> 9" in out

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert obs_main(["summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err


class TestLatencyFromHistogram:
    def test_stats_derived_from_histogram(self):
        rec = LatencyRecorder()
        for _ in range(100):
            rec.record(0.002)
        for _ in range(5):
            rec.record(0.050)
        stats = rec.stats()
        assert stats.count == 105
        assert stats.p50_ms == pytest.approx(2.0, rel=0.08)
        assert stats.p99_ms == pytest.approx(50.0, rel=0.08)

    def test_aggregate_merges_cross_shard_distribution(self):
        class FakeReport:
            def __init__(self, seconds):
                self.cluster = "X"
                self.events = len(seconds)
                self.wall_seconds = 1.0
                self.qssf_decisions = 0
                self.node_samples = 0
                self.refits = {}
                rec = LatencyRecorder()
                for s in seconds:
                    rec.record(s)
                self.qssf_hist = rec.hist
                self.ces_hist = None

        # One fast shard, one slow shard: the merged p99 must reflect the
        # slow shard's tail, which an average of per-shard p99s would not.
        fast = FakeReport([0.001] * 99)
        slow = FakeReport([0.100] * 99)
        agg = aggregate_reports([fast, slow])
        assert agg["qssf_latency"]["count"] == 198
        assert agg["qssf_latency"]["p99_ms"] == pytest.approx(100.0, rel=0.08)
        assert "ces_latency" not in agg  # no shard carried a CES histogram

    def test_reports_without_hists_keep_legacy_schema(self):
        class Legacy:
            cluster = "X"
            events = 0
            wall_seconds = 1.0
            qssf_decisions = 0
            node_samples = 0
            refits: dict = {}

        agg = aggregate_reports([Legacy()])
        assert "qssf_latency" not in agg and "ces_latency" not in agg

    def test_from_histogram_empty(self):
        assert LatencyStats.from_histogram(Histogram()) == LatencyStats(
            count=0, p50_ms=0.0, p99_ms=0.0, mean_ms=0.0
        )


class TestRegistryMerge:
    def test_merge_snapshot_accumulates(self):
        obs.enable()
        obs.counter_add("c", 2)
        first = obs.drain()
        obs.counter_add("c", 3)
        obs.merge_snapshot(first)
        assert obs.snapshot().counters["c"] == 5

    def test_histogram_geometry_fixed_at_creation(self):
        obs.enable()
        h = obs.histogram("depth", lo=1.0, decades=6)
        again = obs.histogram("depth", lo=99.0)  # geometry ignored: exists
        assert again is h
        assert h.lo == 1.0 and h.hi == pytest.approx(1e6)
