"""Tests for the event-stream layer (repro.serve.stream)."""

import numpy as np
import pytest

from helpers import make_spec, make_trace
from repro.frame import Table
from repro.serve.stream import (
    FINISH,
    NODE_FAIL,
    NODE_SAMPLE,
    SUBMIT,
    EventStream,
    approx_node_demand,
)
from repro.stats.timeseries import TimeGrid


def _stream(rows, **kwargs):
    return EventStream.from_trace(make_trace(rows), cluster="T", **kwargs)


class TestFromTrace:
    def test_counts_and_order(self):
        s = _stream([(0, 1, 100.0), (50, 2, 10.0), (200, 1, 5.0)])
        assert s.counts() == {
            "submit": 3, "finish": 3, "node_sample": 0, "node_fail": 0,
        }
        assert np.all(np.diff(s.times) >= 0)

    def test_finish_before_submit_at_same_instant(self):
        # job 0 finishes at t=100 exactly when job 2 submits
        s = _stream([(0, 1, 100.0), (50, 1, 10.0), (100, 1, 5.0)])
        at_100 = s.kinds[s.times == 100.0]
        assert list(at_100) == [FINISH, SUBMIT]

    def test_finishes_beyond_horizon_dropped(self):
        s = _stream([(0, 1, 50.0), (10, 1, 1e6)], t0=0.0, t1=100.0)
        assert s.counts()["finish"] == 1

    def test_node_samples_cover_grid(self):
        s = _stream([(0, 1, 100.0)], t0=0.0, t1=600.0, bin_seconds=100)
        assert s.counts()["node_sample"] == 6
        assert s.grid is not None and s.grid.bins == 6
        assert len(s.demand) == 6 and len(s.arrivals) == 6

    def test_demand_override_validated(self):
        with pytest.raises(ValueError, match="one value per bin"):
            _stream(
                [(0, 1, 100.0)], t0=0.0, t1=600.0, bin_seconds=100,
                demand=np.zeros(3),
            )

    def test_empty_trace(self):
        s = _stream([], t0=0.0, t1=300.0, bin_seconds=100)
        assert s.counts() == {
            "submit": 0, "finish": 0, "node_sample": 3, "node_fail": 0,
        }


class TestFromReplay:
    def test_finishes_at_replayed_end_times(self):
        from repro.sched import FIFOScheduler
        from repro.sim import Simulator
        from repro.sim.telemetry import running_nodes_series

        # 2 nodes x 8 GPUs: the second 16-GPU job queues behind the first
        trace = make_trace([(0, 16, 100.0), (10, 16, 50.0)])
        replay = Simulator(make_spec(nodes=2), FIFOScheduler()).run(trace)
        s = EventStream.from_replay(replay, "T", bin_seconds=50)
        fin_times = s.times[s.kinds == FINISH]
        assert fin_times.tolist() == sorted(replay.end_times.tolist())
        assert fin_times.max() == 150.0  # queued job ran after the first
        assert np.array_equal(s.demand, running_nodes_series(replay, s.grid))


def _events_table(rows):
    """rows: (time, node, up) triples -> a node-events Table."""
    t, n, u = (np.array(c) for c in zip(*rows)) if rows else (
        np.zeros(0), np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    )
    return Table({
        "time": t.astype(float),
        "node": n.astype(np.int64),
        "up": u.astype(np.int64),
    })


class TestNodeFailEvents:
    def test_counts_and_refs_index_events_table(self):
        ev = _events_table([(30.0, 2, 0), (80.0, 2, 1)])
        s = _stream([(0, 1, 100.0)], t0=0.0, t1=200.0, node_events=ev)
        assert s.counts()["node_fail"] == 2
        fail = s.kinds == NODE_FAIL
        # refs index the (clipped) node_events table carried on the stream
        for t, ref in zip(s.times[fail], s.refs[fail]):
            assert s.node_events["time"][int(ref)] == t
        assert s.node_events["node"].tolist() == [2, 2]
        assert s.node_events["up"].tolist() == [0, 1]

    def test_clipped_at_high_end_only(self):
        """Events past the horizon drop; leading events never do (that
        would break the per-node down/up alternation)."""
        ev = _events_table([(10.0, 0, 0), (150.0, 0, 1), (999.0, 1, 0)])
        s = _stream([(0, 1, 100.0)], t0=0.0, t1=200.0, node_events=ev)
        assert s.counts()["node_fail"] == 2
        assert s.node_events["time"].tolist() == [10.0, 150.0]

    def test_sorts_last_at_equal_timestamps(self):
        # finish (t=100) and a node event at the same instant: the event
        # kind code is highest, so placement reacts after the release
        ev = _events_table([(100.0, 0, 0)])
        s = _stream([(0, 1, 100.0)], t0=0.0, t1=200.0, node_events=ev)
        at_100 = s.kinds[s.times == 100.0]
        assert list(at_100) == [FINISH, NODE_FAIL]

    def test_empty_events_table_is_noop(self):
        s = _stream([(0, 1, 100.0)], t0=0.0, t1=200.0,
                    node_events=_events_table([]))
        assert s.counts()["node_fail"] == 0

    def test_batches_carry_node_fail_kind(self):
        ev = _events_table([(40.0, 0, 0), (40.0, 1, 0), (90.0, 0, 1)])
        s = _stream([(0, 1, 1e6)], t0=0.0, t1=200.0, node_events=ev)
        kinds = [(b.kind, len(b)) for b in s.batches(window_s=0.0)]
        assert (NODE_FAIL, 2) in kinds and (NODE_FAIL, 1) in kinds


class TestApproxNodeDemand:
    def test_concurrency_counts_nodes(self):
        # two 1-node jobs overlap in [100, 200); node_num = 1 each
        trace = make_trace([(0, 8, 200.0), (100, 8, 200.0)])
        grid = TimeGrid.covering(0.0, 300.0, 100)
        demand = approx_node_demand(trace, grid)
        assert demand.tolist() == [1.0, 2.0, 1.0]

    def test_cap(self):
        trace = make_trace([(0, 8, 100.0), (0, 8, 100.0), (0, 8, 100.0)])
        grid = TimeGrid.covering(0.0, 100.0, 100)
        assert approx_node_demand(trace, grid, cap=2).tolist() == [2.0]


class TestBatches:
    def test_batches_partition_stream(self):
        s = _stream(
            [(i * 10, 1, 35.0) for i in range(20)],
            t0=0.0, t1=300.0, bin_seconds=50,
        )
        batches = list(s.batches(window_s=60.0))
        # every event covered exactly once, in stream order
        assert sum(len(b) for b in batches) == len(s)
        flat_kinds = np.concatenate([np.full(len(b), b.kind) for b in batches])
        assert np.array_equal(flat_kinds, s.kinds)
        flat_refs = np.concatenate([b.refs for b in batches])
        assert np.array_equal(flat_refs, s.refs)

    def test_window_coalesces_submits(self):
        s = _stream([(0, 1, 1e6), (10, 1, 1e6), (70, 1, 1e6)], t0=0.0, t1=100.0)
        batches = list(s.batches(window_s=60.0))
        assert [(b.kind, len(b)) for b in batches] == [(SUBMIT, 2), (SUBMIT, 1)]
        assert batches[0].time == 10.0  # decision stamped at batch close

    def test_zero_window_batches_identical_timestamps(self):
        s = _stream([(0, 1, 1e6), (0, 1, 1e6), (5, 1, 1e6)], t0=0.0, t1=100.0)
        sizes = [len(b) for b in s.batches(window_s=0.0)]
        assert sizes == [2, 1]

    def test_kind_change_breaks_batch(self):
        # finish of job0 (t=30) lands inside the submit window
        s = _stream([(0, 1, 30.0), (10, 1, 1e6), (40, 1, 1e6)], t0=0.0, t1=100.0)
        kinds = [b.kind for b in s.batches(window_s=1e9)]
        assert kinds == [SUBMIT, FINISH, SUBMIT]

    def test_play_without_speedup_equals_batches(self):
        s = _stream([(i, 1, 50.0) for i in range(10)])
        a = [(b.kind, b.refs.tolist()) for b in s.batches(5.0)]
        b = [(b.kind, b.refs.tolist()) for b in s.play(5.0, speedup=None)]
        assert a == b

    def test_play_paces_wall_clock(self):
        import time

        s = _stream([(0, 1, 1e6), (1000, 1, 1e6)], t0=0.0, t1=2000.0)
        t0 = time.monotonic()
        list(s.play(window_s=0.0, speedup=20_000.0))  # 1000 s span -> 50 ms
        assert time.monotonic() - t0 >= 0.04

    def test_negative_speedup_rejected(self):
        s = _stream([(0, 1, 1.0)])
        with pytest.raises(ValueError):
            list(s.play(speedup=-1.0))


class TestEvents:
    def test_events_materialize(self):
        s = _stream([(0, 2, 10.0)])
        events = list(s.events())
        assert [e.kind_name for e in events] == ["submit", "finish"]
        assert events[0].cluster == "T"
        assert len(events) == len(s)
