"""End-to-end integration tests: the full paper pipeline at mini scale.

generate → validate → replay → characterize → schedule (QSSF) →
energy-manage (CES) → persist/reload, all in one flow, exercising the
public API exactly as the examples and experiments do.
"""

import numpy as np
import pytest

from repro.analysis import (
    duration_summary,
    gpu_time_by_status,
    status_distribution,
    user_resource_curve,
)
from repro.energy import CESService
from repro.framework import (
    CESNodeService,
    ModelUpdateEngine,
    QSSFService,
    ResourceOrchestrator,
    UpdatePolicy,
)
from repro.frame import Table
from repro.ml import GBDTParams
from repro.sched import (
    FIFOScheduler,
    QSSFScheduler,
    compute_metrics,
)
from repro.sim import Simulator, running_nodes_series
from repro.stats import TimeGrid
from repro.traces import (
    HeliosTraceGenerator,
    SynthParams,
    is_gpu_job,
    load_trace,
    save_trace,
    split_train_eval,
    validate_trace,
)

pytestmark = pytest.mark.slow  # full-pipeline flows dominate the suite wall-clock

MONTH = 30 * 86_400


@pytest.fixture(scope="module")
def pipeline():
    """Shared mini deployment: 3 months of Venus at 10% scale."""
    gen = HeliosTraceGenerator(SynthParams(months=3, scale=0.1, seed=99))
    trace = gen.generate_cluster("Venus")
    gpu = trace.filter(is_gpu_job(trace))
    replay = Simulator(gen.specs["Venus"], FIFOScheduler()).run(gpu)
    return gen, trace, gpu, replay


class TestFullPipeline:
    def test_trace_valid_and_persistable(self, pipeline, tmp_path):
        gen, trace, _, _ = pipeline
        validate_trace(trace, gen.specs["Venus"])
        path = tmp_path / "venus.csv"
        save_trace(trace.head(500), path)
        back = load_trace(path)
        assert len(back) == 500

    def test_replay_then_characterize(self, pipeline):
        _, trace, gpu, replay = pipeline
        summary = duration_summary(trace)
        assert summary["n_gpu_jobs"] == len(gpu)
        shares = gpu_time_by_status(trace)
        assert sum(shares.values()) == pytest.approx(1.0)
        dist = status_distribution(trace)
        assert len(dist) == 2
        frac, share = user_resource_curve(trace, "gpu")
        assert share[-1] == pytest.approx(1.0)
        validate_trace(replay.replayed_trace(), replayed=True)

    def test_qssf_on_top_of_replay(self, pipeline):
        gen, _, gpu, fifo_replay = pipeline
        history, evalp = split_train_eval(gpu, eval_month=2)
        qssf = QSSFScheduler(
            history, lam=0.5,
            gbdt_params=GBDTParams(n_estimators=30, max_depth=5),
        )
        res = Simulator(gen.specs["Venus"], qssf).run(evalp)
        fifo_eval = Simulator(gen.specs["Venus"], FIFOScheduler()).run(evalp)
        q = compute_metrics("QSSF", res)
        f = compute_metrics("FIFO", fifo_eval)
        assert q.avg_queue_time <= f.avg_queue_time

    def test_ces_on_top_of_replay(self, pipeline):
        _, _, _, replay = pipeline
        report = CESService().evaluate(
            replay, eval_start=2 * MONTH, eval_end=3 * MONTH - 9 * 86_400,
            cluster="Venus",
        )
        assert np.all(report.ces.active >= report.ces.demand)
        assert report.smape_forecast < 30.0

    def test_framework_composition(self, pipeline):
        """Both case studies side by side behind the §4.1 framework."""
        gen, _, gpu, replay = pipeline
        history, evalp = split_train_eval(gpu, eval_month=2)

        orch = ResourceOrchestrator()
        qssf_svc = QSSFService(lam=1.0).fit(history)
        grid = TimeGrid(0.0, 600.0, 2 * 30 * 144)
        demand = running_nodes_series(replay, grid)
        ces_svc = CESNodeService().fit(demand[: 30 * 144 * 2 - 200])
        orch.install(qssf_svc)
        orch.install(ces_svc)
        assert set(orch.installed) == {"qssf", "ces"}

        # QSSF decision: sort a queue snapshot.
        queue = evalp.head(50)
        ordered = orch.decide("qssf", queue)
        pri = qssf_svc.predict(ordered)
        assert np.all(np.diff(pri) >= -1e-9)

        # CES decision: control a demand window.
        outcome = orch.decide("ces", (demand[-500:], replay.num_nodes))
        assert outcome.total_nodes == replay.num_nodes

    def test_model_update_engine_with_qssf(self, pipeline):
        """The engine refits QSSF from buffered finished-job events."""
        _, _, gpu, _ = pipeline

        def build_history(events) -> Table:
            return Table.concat([e for e in events])

        engine = ModelUpdateEngine(UpdatePolicy(interval_seconds=MONTH))
        svc = QSSFService(lam=1.0)
        engine.register(svc, build_history)
        # feed two monthly batches: the second one triggers a refit
        first = gpu.filter(gpu["submit_time"] < MONTH)
        second = gpu.filter(
            (gpu["submit_time"] >= MONTH) & (gpu["submit_time"] < 2 * MONTH)
        )
        engine.observe("qssf", first.select(*first.columns), now=0.0)
        engine.observe("qssf", second.select(*second.columns), now=float(MONTH + 1))
        assert engine.refit_count("qssf") >= 1
        assert svc.scheduler is not None
        pred = svc.predict(gpu.head(5))
        assert pred.shape == (5,)


class TestCrossClusterConsistency:
    def test_all_clusters_flow_through(self):
        """Every cluster generates, validates and replays at tiny scale."""
        gen = HeliosTraceGenerator(SynthParams(months=1, scale=0.05, seed=4))
        for name in ("Venus", "Earth", "Saturn", "Uranus"):
            trace = gen.generate_cluster(name)
            validate_trace(trace, gen.specs[name])
            gpu = trace.filter(is_gpu_job(trace))
            res = Simulator(gen.specs[name], FIFOScheduler()).run(gpu)
            assert np.all(res.end_times >= res.start_times)
            assert res.total_gpus == gen.specs[name].num_gpus
