"""Cross-host model replication: the unit half (no fork needed).

Covers the engine's delegated refit path (versioned outbox, version-
gated installs, pending re-observe, ``replicable=False`` bypass), the
:class:`~repro.serve.net.replicate.ModelUpdateHub`'s idempotent
train-once contract, the deterministic replica stream partition, and
the front-door client's capped deterministic busy-retry loop.  The
forked end-to-end parity and chaos tests live in test_net_chaos.py.
"""

import pickle
import time

import numpy as np
import pytest

from repro.framework import ModelUpdateEngine, PredictionService, UpdatePolicy
from repro.framework.supervise import Supervision, backoff_delay
from repro.serve import ShardTask
from repro.serve.net import FrontDoorClient, ModelUpdateHub, replica_slice
from repro.serve.stream import FINISH, NODE_SAMPLE, SUBMIT, EventBatch


class RecordingService(PredictionService):
    """Minimal incremental service for delegation mechanics."""

    service_name = "svc"
    supports_incremental = True

    def __init__(self):
        self.fit_calls = 0
        self.update_calls = 0
        self.observed = []

    def fit(self, history):
        self.fit_calls += 1
        return self

    def apply_update(self, new_history):
        self.update_calls += 1
        return self

    def predict(self, request):
        return len(self.observed)

    def act(self, state):
        return state

    def observe(self, event):
        self.observed.append(event)


class OwnerLocalService(RecordingService):
    """Same mechanics, but opts out of replication."""

    service_name = "owner"
    replicable = False


def _engine(service=None, max_buffered=1_000_000):
    eng = ModelUpdateEngine(
        policy=UpdatePolicy(interval_seconds=1e12, max_buffered=max_buffered)
    )
    svc = service or RecordingService()
    eng.register(svc, history_builder=list, prefitted=True)
    return eng, svc


class TestDelegatedEngine:
    def test_delegated_refit_queues_versioned_request(self):
        eng, svc = _engine()
        eng.delegated = True
        for ev in ("a", "b", "c"):
            eng.observe("svc", ev, now=1.0)
        assert eng.refit("svc", 5.0) == "delegated"
        assert svc.fit_calls == 0 and svc.update_calls == 0
        assert eng.fits_performed("svc") == 0
        (req,) = eng.sync_requests()
        assert req["service"] == "svc"
        assert req["version"] == 1
        assert req["deltas"] == ["a", "b", "c"]
        assert req["now"] == 5.0
        assert eng.pending_count("svc") == 0
        assert eng.sync_pending("svc")
        assert eng.sync_versions("svc") == (1, 0)

    def test_bookkeeping_mirrors_local_refit(self):
        # The delegated path advances refit_count/incremental_refits
        # exactly as a local refit would — replica reports must show the
        # same ``refits`` dict as the merged-stream run.
        local_eng, _ = _engine()
        deleg_eng, _ = _engine()
        deleg_eng.delegated = True
        for eng in (local_eng, deleg_eng):
            eng.observe("svc", "x", now=0.0)
            eng.refit("svc", 1.0)
        assert deleg_eng.refit_count("svc") == local_eng.refit_count("svc") == 1
        assert (
            deleg_eng.incremental_refit_count("svc")
            == local_eng.incremental_refit_count("svc")
            == 1
        )
        # ...but only the local engine did model work.
        assert local_eng.fits_performed("svc") == 1
        assert deleg_eng.fits_performed("svc") == 0

    def test_requests_persist_until_install(self):
        # The crash-safety contract: the outbox survives repeated reads
        # (and hence a checkpoint pickled mid-flight); only the install
        # consumes it.
        eng, _ = _engine()
        eng.delegated = True
        eng.observe("svc", "a", now=0.0)
        eng.refit("svc", 1.0)
        assert len(eng.sync_requests()) == 1
        assert len(eng.sync_requests()) == 1
        assert eng.install_snapshot("svc", 1, RecordingService())
        assert eng.sync_requests() == []
        assert not eng.sync_pending("svc")
        assert eng.sync_versions("svc") == (1, 1)

    def test_install_is_version_gated(self):
        eng, _ = _engine()
        eng.delegated = True
        for v in range(3):
            eng.observe("svc", f"e{v}", now=float(v))
            eng.refit("svc", float(v))
        assert eng.sync_versions("svc") == (3, 0)
        with pytest.raises(ValueError, match="snapshot gap"):
            eng.install_snapshot("svc", 2, RecordingService())  # skips v1
        with pytest.raises(ValueError, match="snapshot gap"):
            eng.install_snapshot("svc", 4, RecordingService())  # never cut
        assert eng.install_snapshot("svc", 1, RecordingService())
        assert not eng.install_snapshot("svc", 1, RecordingService())  # stale
        assert eng.install_snapshot("svc", 2, RecordingService())
        assert eng.install_snapshot("svc", 3, RecordingService())
        assert eng.sync_versions("svc") == (3, 3)

    def test_install_reobserves_pending(self):
        # Events observed after the delta was cut are re-fed into the
        # incoming service: the installed model is byte-identical to one
        # that refit locally at the cut and kept observing.
        eng, _ = _engine()
        eng.delegated = True
        eng.observe("svc", "before", now=0.0)
        eng.refit("svc", 1.0)
        eng.observe("svc", "late1", now=2.0)
        eng.observe("svc", "late2", now=2.0)
        incoming = RecordingService()
        assert eng.install_snapshot("svc", 1, incoming)
        assert incoming.observed == ["late1", "late2"]
        assert eng.service("svc") is incoming
        assert eng.pending_count("svc") == 2  # still pending for v2

    def test_replicable_false_trains_locally(self):
        eng, svc = _engine(OwnerLocalService())
        eng.delegated = True
        eng.observe("owner", "n0", now=0.0)
        assert eng.refit("owner", 1.0) == "incremental"
        assert svc.update_calls == 1
        assert eng.sync_requests() == []
        assert not eng.sync_pending("owner")
        assert eng.fits_performed("owner") == 1

    def test_skip_snapshot_consumes_version(self):
        # Degraded-shard escape hatch: the version vector advances (so
        # serving unblocks) without reverting the fallback service.
        eng, svc = _engine()
        eng.delegated = True
        eng.observe("svc", "a", now=0.0)
        eng.refit("svc", 1.0)
        eng.skip_snapshot("svc", 1)
        assert not eng.sync_pending("svc")
        assert eng.sync_requests() == []
        assert eng.service("svc") is svc
        # Skipping past the requested version clamps to it.
        eng.skip_snapshot("svc", 99)
        assert eng.sync_versions("svc") == (1, 1)

    def test_outbox_survives_pickle(self):
        # A checkpoint pickles the whole engine: a respawned worker
        # resumes with the in-flight request intact and re-sends it.
        eng, _ = _engine()
        eng.delegated = True
        eng.observe("svc", "a", now=0.0)
        eng.refit("svc", 1.0)
        clone = pickle.loads(pickle.dumps(eng))
        assert clone.delegated
        (req,) = clone.sync_requests()
        assert (req["service"], req["version"], req["deltas"]) == (
            "svc", 1, ["a"])
        assert clone.sync_versions("svc") == (1, 0)


def _batches(kinds):
    return [
        EventBatch(kind=k, time=float(i), refs=np.array([i], dtype=np.int64))
        for i, k in enumerate(kinds)
    ]


class TestReplicaSlice:
    KINDS = [SUBMIT, SUBMIT, FINISH, SUBMIT, NODE_SAMPLE, SUBMIT, FINISH,
             SUBMIT]

    def test_single_replica_gets_everything(self):
        batches = _batches(self.KINDS)
        out = replica_slice(batches, 0, 1)
        assert out == batches
        assert out is not batches  # a copy, not an alias

    def test_submits_round_robin_finishes_broadcast_nodes_owned(self):
        batches = _batches(self.KINDS)
        s0 = replica_slice(batches, 0, 2)
        s1 = replica_slice(batches, 1, 2)
        # Submit ranks 0,2,4 → replica 0; ranks 1,3 → replica 1.
        assert [b.time for b in s0 if b.kind == SUBMIT] == [0.0, 3.0, 7.0]
        assert [b.time for b in s1 if b.kind == SUBMIT] == [1.0, 5.0]
        # Every replica feeds its rolling estimator with every finish.
        for s in (s0, s1):
            assert [b.time for b in s if b.kind == FINISH] == [2.0, 6.0]
        # The CES owner (replica 0) alone sees node samples.
        assert [b.time for b in s0 if b.kind == NODE_SAMPLE] == [4.0]
        assert all(b.kind != NODE_SAMPLE for b in s1)

    def test_partition_is_exact_and_order_preserving(self):
        batches = _batches([SUBMIT] * 10)
        slices = [replica_slice(batches, j, 3) for j in range(3)]
        seen = sorted(b.time for s in slices for b in s)
        assert seen == [b.time for b in batches]  # disjoint and covering
        for s in slices:
            assert [b.time for b in s] == sorted(b.time for b in s)


def _finish_event(i):
    return {"user": f"u{i % 3}", "name": f"job{i}", "gpu_num": 1,
            "duration": 60.0 + i}


class TestModelUpdateHub:
    def _task(self):
        from repro.experiments.serving import smoke_serve_config

        return ShardTask(cluster="Venus", config=smoke_serve_config(),
                         history_days=14, stream_days=1.0, max_jobs=300)

    def test_sync_trains_once_per_version(self):
        hub = ModelUpdateHub()
        task = self._task()
        deltas = [_finish_event(i) for i in range(5)]
        blob, fresh = hub.sync(task, "qssf", 1, deltas, now=100.0)
        assert fresh and hub.refits == 1
        assert pickle.loads(blob).service_name == "qssf"
        # Duplicate (retry / respawned replica): cached, byte-identical.
        blob2, fresh2 = hub.sync(task, "qssf", 1, deltas, now=100.0)
        assert not fresh2 and blob2 == blob
        assert hub.refits == 1 and hub.cached_hits == 1
        assert hub.fits_performed("Venus", "qssf") == 1

    def test_sync_version_gap_is_a_protocol_error(self):
        hub = ModelUpdateHub()
        with pytest.raises(RuntimeError, match="version gap"):
            hub.sync(self._task(), "qssf", 2, [_finish_event(0)], now=1.0)

    def test_replicas_share_one_lineage(self):
        # Two replicas of one cluster requesting the same version get
        # the same blob from one fit — the whole point of central mode.
        hub = ModelUpdateHub()
        t0 = self._task()
        t1 = ShardTask(cluster=t0.cluster, config=t0.config,
                       history_days=t0.history_days,
                       stream_days=t0.stream_days, max_jobs=t0.max_jobs,
                       replica_index=1, replica_count=2)
        deltas = [_finish_event(i) for i in range(4)]
        blob0, fresh0 = hub.sync(t0, "qssf", 1, deltas, now=50.0)
        blob1, fresh1 = hub.sync(t1, "qssf", 1, deltas, now=50.0)
        assert fresh0 and not fresh1
        assert blob0 == blob1
        assert hub.refits == 1


class TestFrontDoorClientRetry:
    def _client(self, max_retries, monkeypatch, replies):
        """A socketless client whose request() pops canned replies and
        whose sleeps are recorded instead of taken."""
        client = FrontDoorClient.__new__(FrontDoorClient)
        client._sup = Supervision(
            timeout_s=None, max_retries=max_retries,
            backoff_base_s=0.01, backoff_cap_s=0.05,
        )
        sleeps = []
        monkeypatch.setattr(client, "request", lambda msg: replies.pop(0))
        monkeypatch.setattr(time, "sleep", sleeps.append)
        return client, sleeps

    def _batch(self):
        return EventBatch(kind=SUBMIT, time=0.0,
                          refs=np.array([0], dtype=np.int64))

    def test_busy_then_accepted_backs_off_deterministically(self, monkeypatch):
        replies = [
            {"op": "busy", "retry_after_s": 0.02},
            {"op": "busy", "retry_after_s": 0.02},
            {"op": "accepted", "bi": 0},
        ]
        client, sleeps = self._client(5, monkeypatch, replies)
        reply = client.send_event("Venus", 0, self._batch())
        assert reply["op"] == "accepted"
        assert len(sleeps) == 2
        sup = client._sup
        # Each wait honors the server hint, rides the shared
        # deterministic backoff, and never exceeds the cap.
        for attempt, slept in enumerate(sleeps, start=1):
            expected = max(
                0.02, backoff_delay(f"frontdoor:Venus:{0}", attempt, sup))
            assert slept == min(expected, sup.backoff_cap_s)
            assert slept <= sup.backoff_cap_s

    def test_gives_up_with_clear_error_after_budget(self, monkeypatch):
        busy = {"op": "busy", "retry_after_s": 0.3}
        client, sleeps = self._client(3, monkeypatch, [dict(busy)] * 4)
        with pytest.raises(TimeoutError, match="after 3 retries"):
            client.send_event("Venus", 7, self._batch())
        assert len(sleeps) == 3  # no sleep after the final attempt
        # The 0.3s hint is clamped to the cap: give-up is prompt.
        assert all(s == client._sup.backoff_cap_s for s in sleeps)
