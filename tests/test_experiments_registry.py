"""Tests for the experiment registry and CLI runner (cheap exhibits only)."""

import pytest

from repro.experiments import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.runner import main as runner_main


EXPECTED_IDS = {
    # every table and figure of the paper's evaluation + ablations
    "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
    "fig7", "fig8", "fig9", "fig11", "fig12", "fig13", "table3", "table4",
    "fig14", "fig15", "table5", "ces_sweep",
    "ablation_lambda", "ablation_forecaster", "ablation_buffer",
    "ablation_oracle",
    "serve_smoke", "serve_replay", "serve_chaos", "serve_frontdoor",
}


class TestRegistry:
    def test_every_exhibit_registered(self):
        assert set(experiment_ids()) == EXPECTED_IDS

    def test_all_callables(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_table1_payload(self):
        payload = run_experiment("table1")
        assert "text" in payload
        assert payload["table"]["paper_gpus"].sum() == 6416


class TestRunner:
    def test_list_mode(self, capsys):
        assert runner_main([]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig14" in out

    def test_list_flag(self, capsys):
        assert runner_main(["--list"]) == 0
        assert "serve_smoke" in capsys.readouterr().out

    def test_list_json_machine_readable(self, capsys):
        import json

        assert runner_main(["--list", "--json"]) == 0
        registry = json.loads(capsys.readouterr().out)
        by_id = {e["id"]: e for e in registry["experiments"]}
        assert set(by_id) == EXPECTED_IDS
        entry = by_id["serve_smoke"]
        assert entry["cost"] == "medium" and entry["smoke"] is True
        assert "cluster_gpu_trace:Venus" in entry["inputs"]
        # precursors are the dependency closure, in warm order
        fig2 = by_id["fig2"]
        assert "cluster_trace:Earth" in fig2["precursors"]
        assert fig2["precursors"].index("cluster_trace:Earth") < fig2[
            "precursors"
        ].index("full_replay:Earth")

    def test_list_json_to_file(self, tmp_path):
        import json

        out = tmp_path / "registry.json"
        assert runner_main(["--list", "--json", str(out)]) == 0
        assert "experiments" in json.loads(out.read_text())

    def test_list_rejects_ids(self):
        with pytest.raises(SystemExit):
            runner_main(["--list", "table1"])

    def test_serve_smoke_spec_registered(self):
        from repro.experiments.common import compute_precursor, PRECURSOR_FNS
        from repro.experiments.registry import get_spec

        spec = get_spec("serve_smoke")
        assert spec.smoke and spec.cost == "medium"
        for token in spec.inputs:  # tokens must parse against known families
            assert token.partition(":")[0] in PRECURSOR_FNS
        assert callable(compute_precursor)

    def test_run_one(self, capsys):
        assert runner_main(["table1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out


class TestRunnerCLI:
    def test_cache_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert runner_main(["table1", "--cache-dir", cache_dir]) == 0
        assert "computed" in capsys.readouterr().out
        assert runner_main(["table1", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "cached" in out and "Table 1" in out

    def test_force_recomputes(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        runner_main(["table1", "--cache-dir", cache_dir])
        runner_main(["table1", "--cache-dir", cache_dir, "--force", "-q"])
        assert "computed" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert (
            runner_main(
                ["table1", "--no-cache", "-q", "--json", str(report_path)]
            )
            == 0
        )
        import json

        report = json.loads(report_path.read_text())
        assert report["results"][0]["exp_id"] == "table1"
        assert report["results"][0]["status"] == "computed"
        assert report["jobs"] == 1

    def test_profile_selection(self):
        from repro.experiments.runner import _select_ids, build_parser
        from repro.experiments import experiment_ids, smoke_ids

        parser = build_parser()
        assert _select_ids(parser.parse_args(["--smoke"])) == smoke_ids()
        assert _select_ids(parser.parse_args(["all"])) == experiment_ids()
        assert _select_ids(parser.parse_args(["--full"])) == experiment_ids()
        assert _select_ids(parser.parse_args([])) is None
        assert _select_ids(parser.parse_args(["fig1", "fig1", "table1"])) == [
            "fig1",
            "table1",
        ]
