"""Tests for cluster/VC specifications."""

import numpy as np
import pytest

from repro.traces import (
    HELIOS_CLUSTER_TABLE,
    ClusterSpec,
    VCSpec,
    helios_cluster_specs,
    partition_vcs,
    philly_cluster_spec,
)


class TestVCSpec:
    def test_gpus(self):
        vc = VCSpec("vcA", num_nodes=4, gpus_per_node=8)
        assert vc.num_gpus == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            VCSpec("vcA", num_nodes=0, gpus_per_node=8)
        with pytest.raises(ValueError):
            VCSpec("vcA", num_nodes=1, gpus_per_node=0)


class TestPartition:
    def test_sizes_sum_to_total(self):
        rng = np.random.default_rng(0)
        vcs = partition_vcs("X", n_nodes=133, n_vcs=27, gpus_per_node=8, rng=rng)
        assert sum(vc.num_nodes for vc in vcs) == 133
        assert len(vcs) == 27

    def test_every_vc_at_least_one_node(self):
        rng = np.random.default_rng(1)
        vcs = partition_vcs("X", n_nodes=10, n_vcs=10, gpus_per_node=8, rng=rng)
        assert all(vc.num_nodes >= 1 for vc in vcs)

    def test_vc_count_capped_by_nodes(self):
        """VC count is cut so that VCs keep >= 2 nodes where possible."""
        rng = np.random.default_rng(2)
        vcs = partition_vcs("X", n_nodes=5, n_vcs=20, gpus_per_node=8, rng=rng)
        assert len(vcs) == 2
        assert sum(vc.num_nodes for vc in vcs) == 5

    def test_skewed_sizes(self):
        rng = np.random.default_rng(3)
        vcs = partition_vcs("X", n_nodes=200, n_vcs=25, gpus_per_node=8, rng=rng)
        sizes = sorted(vc.num_nodes for vc in vcs)
        assert sizes[-1] >= 3 * sizes[0]  # heavy-tailed like Fig 4

    def test_unique_names(self):
        rng = np.random.default_rng(4)
        vcs = partition_vcs("X", 50, 20, 8, rng)
        names = [vc.name for vc in vcs]
        assert len(set(names)) == len(names)


class TestHeliosSpecs:
    def test_full_scale_matches_table1(self):
        specs = helios_cluster_specs(scale=1.0)
        assert set(specs) == set(HELIOS_CLUSTER_TABLE)
        for name, spec in specs.items():
            row = HELIOS_CLUSTER_TABLE[name]
            assert spec.num_nodes == row["nodes"]
            assert spec.num_gpus == row["gpus"]
            assert spec.num_vcs == row["vcs"]

    def test_scaling(self):
        specs = helios_cluster_specs(scale=0.25)
        assert specs["Venus"].num_nodes == pytest.approx(133 * 0.25, abs=1)
        assert specs["Venus"].num_vcs >= 3

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            helios_cluster_specs(scale=0.0)

    def test_vc_lookup(self):
        spec = helios_cluster_specs(scale=0.1)["Earth"]
        vc = spec.vcs[0]
        assert spec.vc(vc.name) is vc
        with pytest.raises(KeyError):
            spec.vc("nope")

    def test_deterministic(self):
        a = helios_cluster_specs(seed=5, scale=0.2)
        b = helios_cluster_specs(seed=5, scale=0.2)
        assert [vc.name for vc in a["Saturn"].vcs] == [vc.name for vc in b["Saturn"].vcs]


class TestPhillySpec:
    def test_shape(self):
        spec = philly_cluster_spec(scale=1.0)
        assert spec.name == "Philly"
        assert spec.num_nodes == 552
        assert spec.gpus_per_node == 4
        assert spec.num_vcs == 14

    def test_bigger_than_earth(self):
        """Fig 15: Philly's node count is over twice Earth's."""
        philly = philly_cluster_spec(scale=1.0)
        earth = helios_cluster_specs(scale=1.0)["Earth"]
        assert philly.num_nodes > 2 * earth.num_nodes
