"""Golden-payload regression harness for the smoke-profile exhibits.

Every exhibit in the runner's ``--smoke`` profile has a committed golden
digest under ``tests/goldens/<exp_id>.json``.  The digest is a SHA-256
over the exhibit payload serialized with the same deterministic codec
the artifact cache uses (:func:`repro.experiments.cache.dumps_payload`),
after scrubbing the few genuinely volatile fields (wall-clock timings
and latency percentiles of the serving exhibits).  Everything else —
tables, series, digests, counters, rendered text — is locked byte-for-
byte, so any refactor that silently changes an exhibit payload fails
here with the offending exhibit named.

To re-bless the goldens after an *intentional* payload change::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --regen-goldens

and commit the rewritten ``tests/goldens/*.json`` alongside the change
that motivated it.  See ``tests/goldens/README.md``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.cache import dumps_payload
from repro.experiments.orchestrator import _run_seeded
from repro.experiments.registry import smoke_ids

# Cold smoke exhibits include replays + forecaster fits (~20 s);
# tier-1 and the CI coverage job run this, quick loops skip it.
pytestmark = pytest.mark.slow

GOLDENS_DIR = Path(__file__).parent / "goldens"

#: Keys whose values depend on the wall clock, scrubbed (recursively, by
#: name) before digesting.  Everything else must be deterministic.
VOLATILE_KEYS = frozenset(
    {"wall_seconds", "events_per_s", "qssf_latency", "ces_latency",
     "net_stats"}
)

#: Exhibits whose rendered ``text`` embeds the volatile metrics above
#: (the serving exhibits print events/s and latency percentiles); their
#: text is scrubbed too.  Every other exhibit's text is locked.
VOLATILE_TEXT = frozenset({"serve_smoke", "serve_replay"})


def scrub(obj, *, drop_text: bool = False):
    """Recursively drop volatile keys from a payload (non-destructive)."""
    if isinstance(obj, dict):
        return {
            k: scrub(v, drop_text=drop_text)
            for k, v in obj.items()
            if k not in VOLATILE_KEYS and not (drop_text and k == "text")
        }
    if isinstance(obj, (list, tuple)):
        scrubbed = [scrub(v, drop_text=drop_text) for v in obj]
        return type(obj)(scrubbed) if isinstance(obj, tuple) else scrubbed
    return obj


def payload_digest(exp_id: str, payload: dict) -> str:
    stable = scrub(payload, drop_text=exp_id in VOLATILE_TEXT)
    return hashlib.sha256(dumps_payload(stable)).hexdigest()


def golden_path(exp_id: str) -> Path:
    return GOLDENS_DIR / f"{exp_id}.json"


@pytest.mark.parametrize("exp_id", smoke_ids())
def test_smoke_payload_matches_golden(exp_id, request):
    payload = _run_seeded(exp_id)  # the orchestrator's seeded code path
    digest = payload_digest(exp_id, payload)
    path = golden_path(exp_id)

    if request.config.getoption("--regen-goldens"):
        GOLDENS_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "exp_id": exp_id,
                    "payload_sha256": digest,
                    "scrubbed_keys": sorted(VOLATILE_KEYS),
                    "text_scrubbed": exp_id in VOLATILE_TEXT,
                },
                indent=2,
            )
            + "\n"
        )
        return

    assert path.exists(), (
        f"no golden for smoke exhibit {exp_id!r}; generate it with "
        "`python -m pytest tests/test_goldens.py --regen-goldens`"
    )
    golden = json.loads(path.read_text())
    assert digest == golden["payload_sha256"], (
        f"{exp_id} payload drifted from its golden digest — if the change "
        "is intentional, re-bless with --regen-goldens and commit the "
        "updated tests/goldens/*.json"
    )


def test_every_smoke_exhibit_has_a_golden(request):
    """No smoke exhibit can be added without committing its golden."""
    if request.config.getoption("--regen-goldens"):
        pytest.skip("regenerating")
    missing = [eid for eid in smoke_ids() if not golden_path(eid).exists()]
    assert not missing, f"smoke exhibits without goldens: {missing}"


def test_no_stale_goldens():
    """Every committed golden still names a smoke exhibit."""
    known = set(smoke_ids())
    stale = sorted(
        p.stem
        for p in GOLDENS_DIR.glob("*.json")
        if p.stem not in known
    )
    assert not stale, f"goldens for non-smoke exhibits: {stale}"
