"""End-to-end tests for QSSF scheduling (Algorithm 1 + simulator)."""

import numpy as np
import pytest

from repro.sched import (
    FIFOScheduler,
    NoisyOracleScheduler,
    OracleGpuTimeScheduler,
    QSSFScheduler,
    SJFScheduler,
    compute_metrics,
    queue_delay_ratio_by_group,
    queuing_by_vc,
)
from repro.sim import Simulator
from repro.traces import HeliosTraceGenerator, SynthParams, is_gpu_job, split_train_eval

from helpers import make_spec, make_trace

pytestmark = pytest.mark.slow  # trains QSSF models on synthetic months


@pytest.fixture(scope="module")
def venus_setup():
    """Small Venus workload: train on month 0, evaluate month 1."""
    gen = HeliosTraceGenerator(SynthParams(months=2, scale=0.1, seed=21))
    trace = gen.generate_cluster("Venus")
    gpu = trace.filter(is_gpu_job(trace))
    train, evalp = split_train_eval(gpu, eval_month=1)
    return gen.specs["Venus"], train, evalp


class TestQSSFScheduler:
    def test_lambda_validation(self, venus_setup):
        _, train, _ = venus_setup
        with pytest.raises(ValueError):
            QSSFScheduler(train, lam=1.5)

    def test_priorities_scale_with_gpu_demand(self, venus_setup):
        """Priority is GPU time: same duration estimate, more GPUs ->
        larger priority value (scheduled later)."""
        _, train, evalp = venus_setup
        sched = QSSFScheduler(train, lam=1.0)  # rolling only (fast)
        pred_dur = sched.predicted_durations(evalp)
        pri = sched.priorities(evalp)
        np.testing.assert_allclose(pri, pred_dur * evalp["gpu_num"], rtol=1e-12)

    def test_prediction_correlates_with_truth(self, venus_setup):
        _, train, evalp = venus_setup
        sched = QSSFScheduler(train, lam=0.5)
        pred = sched.predicted_durations(evalp)
        true = evalp["duration"]
        corr = np.corrcoef(np.log(pred + 1), np.log(true + 1))[0, 1]
        assert corr > 0.35

    def test_observe_updates_rolling(self, venus_setup):
        _, train, _ = venus_setup
        sched = QSSFScheduler(train, lam=1.0)
        before = sched.rolling.estimate("brand_new_user", "fresh_job", 1)
        sched.observe("brand_new_user", "fresh_job_1", 1, 77777.0)
        after = sched.rolling.estimate("brand_new_user", "fresh_job_2", 1)
        assert after != before
        assert after == pytest.approx(77777.0)


class TestQSSFImprovesOnFIFO:
    def test_jct_between_fifo_and_sjf(self, venus_setup):
        """The headline result (Table 3): QSSF ~ SJF, both >> FIFO."""
        spec, train, evalp = venus_setup
        fifo = compute_metrics("FIFO", Simulator(spec, FIFOScheduler()).run(evalp))
        sjf = compute_metrics("SJF", Simulator(spec, SJFScheduler()).run(evalp))
        qssf_s = QSSFScheduler(train, lam=0.5)
        qssf = compute_metrics("QSSF", Simulator(spec, qssf_s).run(evalp))
        # Queueing (what QSSF attacks) improves dramatically; JCT
        # improves by whatever share queueing holds of it.
        assert qssf.avg_queue_time < 0.6 * fifo.avg_queue_time
        assert qssf.avg_jct < fifo.avg_jct
        assert qssf.avg_jct < 3.0 * sjf.avg_jct  # comparable with oracle

    def test_all_duration_groups_benefit(self, venus_setup):
        """Table 4: short > middle > long improvements, all >= 1."""
        spec, train, evalp = venus_setup
        fifo_res = Simulator(spec, FIFOScheduler()).run(evalp)
        qssf_res = Simulator(spec, QSSFScheduler(train, lam=0.5)).run(evalp)
        ratios = queue_delay_ratio_by_group(fifo_res, qssf_res)
        assert ratios["short-term"] > 1.0
        assert ratios["short-term"] > ratios["long-term"]


class TestOracles:
    def test_oracle_gpu_time_ranks_perfectly(self):
        trace = make_trace([(0, 8, 100), (1, 1, 100), (2, 8, 1)])
        pri = OracleGpuTimeScheduler().priorities(trace)
        assert pri.tolist() == [800.0, 100.0, 8.0]

    def test_noisy_oracle_deterministic_per_seed(self):
        trace = make_trace([(0, 4, 50), (1, 2, 500)])
        a = NoisyOracleScheduler(seed=3).priorities(trace)
        b = NoisyOracleScheduler(seed=3).priorities(trace)
        np.testing.assert_array_equal(a, b)
        c = NoisyOracleScheduler(seed=4).priorities(trace)
        assert not np.array_equal(a, c)

    def test_noisy_oracle_validation(self):
        with pytest.raises(ValueError):
            NoisyOracleScheduler(log_error_sigma=-1.0)

    def test_noisy_oracle_beats_fifo(self):
        """The Philly protocol: noisy priorities still beat FIFO."""
        rng = np.random.default_rng(5)
        rows = [
            (int(rng.integers(0, 2000)), int(2 ** rng.integers(0, 4)),
             float(rng.lognormal(4.5, 1.6)))
            for _ in range(400)
        ]
        trace = make_trace(rows)
        spec = make_spec(nodes=2)
        fifo = compute_metrics(
            "FIFO", Simulator(spec, FIFOScheduler()).run(trace)
        )
        noisy = compute_metrics(
            "QSSF", Simulator(spec, NoisyOracleScheduler(seed=1)).run(trace)
        )
        assert noisy.avg_jct < fifo.avg_jct


class TestVCMetrics:
    def test_queuing_by_vc(self, venus_setup):
        spec, _, evalp = venus_setup
        res = Simulator(spec, FIFOScheduler()).run(evalp)
        by_vc = queuing_by_vc(res)
        assert set(by_vc["vc"]) <= {vc.name for vc in spec.vcs}
        assert int(by_vc["num_jobs"].sum()) == len(evalp)

    def test_ratio_requires_same_trace(self, venus_setup):
        spec, _, evalp = venus_setup
        r1 = Simulator(spec, FIFOScheduler()).run(evalp)
        r2 = Simulator(spec, FIFOScheduler()).run(evalp.slice(0, len(evalp) - 1))
        with pytest.raises(ValueError):
            queue_delay_ratio_by_group(r1, r2)
