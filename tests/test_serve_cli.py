"""Serve CLI: fault-plan loading, retry knobs, endpoints, exit codes.

``--fault-plan`` must never dump a traceback: every malformed input —
missing file, unreadable path, broken JSON, invalid plan — exits
nonzero with a one-line diagnostic.  The retry knobs (`--max-retries`,
``--retry-base``, ``--retry-cap``) thread into the supervisor's
:class:`~repro.framework.Supervision` and the net router's
:class:`~repro.serve.NetConfig` from one set of flags.
"""

import json

import pytest

from repro.framework import FaultPlan, FaultSpec
from repro.serve.__main__ import (
    _parse_endpoint,
    build_parser,
    load_fault_plan,
    main,
)


def _one_line_error(capsys) -> str:
    err = capsys.readouterr().err.strip()
    assert err.startswith("error:")
    assert len(err.splitlines()) == 1, f"diagnostic not one line: {err!r}"
    return err


class TestLoadFaultPlan:
    def test_inline_json(self):
        plan = FaultPlan(seed=3, faults=(
            FaultSpec(key="Venus", kind="crash", at=9),))
        assert load_fault_plan(plan.to_json()) == plan

    def test_file_path(self, tmp_path):
        plan = FaultPlan(faults=(
            FaultSpec(key="link:w0", kind="drop", at=4, span=2),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert load_fault_plan(str(path)) == plan

    def test_missing_file(self):
        with pytest.raises(ValueError, match="not found"):
            load_fault_plan("/no/such/plan.json")

    def test_unreadable_path(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_fault_plan(str(tmp_path))  # a directory

    def test_malformed_json(self):
        with pytest.raises(ValueError):
            load_fault_plan('{"seed": 1, "faults": [')

    def test_invalid_plan_semantics(self):
        dup = json.dumps({"seed": 0, "faults": [
            {"key": "a", "kind": "crash"}, {"key": "a", "kind": "crash"},
        ]})
        with pytest.raises(ValueError, match="duplicate"):
            load_fault_plan(dup)


class TestParseEndpoint:
    def test_bare_port_uses_default_host(self):
        assert _parse_endpoint("7341", "127.0.0.1") == ("127.0.0.1", 7341)

    def test_host_and_port(self):
        assert _parse_endpoint("0.0.0.0:80", "127.0.0.1") == ("0.0.0.0", 80)


class TestMainExitCodes:
    def test_missing_fault_plan_file_exits_2(self, capsys):
        assert main(["--fault-plan", "/no/such.json"]) == 2
        assert "bad --fault-plan" in _one_line_error(capsys)

    def test_malformed_inline_plan_exits_2(self, capsys):
        assert main(["--fault-plan", "{broken"]) == 2
        assert "bad --fault-plan" in _one_line_error(capsys)

    def test_bad_retry_knobs_exit_2(self, capsys):
        assert main(["--max-retries", "-1"]) == 2
        assert "bad retry knobs" in _one_line_error(capsys)

    def test_unknown_cluster_exits_2_with_hint(self, capsys):
        assert main(["--clusters", "Venos"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'Venus'" in err

    def test_replication_flags_need_net_mode(self, capsys):
        assert main(["--clusters", "Venus", "--replicas", "2"]) == 2
        assert "need --net" in _one_line_error(capsys)
        assert main(["--clusters", "Venus", "--replicate", "central"]) == 2
        assert "need --net" in _one_line_error(capsys)

    def test_bad_replicas_exit_2(self, capsys):
        assert main(["--clusters", "Venus", "--net", "--replicas", "0"]) == 2
        assert "--replicas must be >= 1" in _one_line_error(capsys)

    def test_replicas_incompatible_with_listen(self, capsys):
        assert main(["--clusters", "Venus", "--listen", "7341",
                     "--replicas", "2"]) == 2
        assert "drive-mode" in _one_line_error(capsys)


class _FakeReport:
    cluster = "Venus"
    events = 10
    wall_seconds = 1.0
    qssf_decisions = 2
    node_samples = 3
    refits: dict = {}


class TestKnobPlumbing:
    def test_retry_knobs_flow_into_supervision(self, monkeypatch, capsys):
        import repro.serve.__main__ as cli

        captured = {}

        def fake_serve(clusters, **kw):
            captured.update(kw)
            return [_FakeReport()]

        monkeypatch.setattr(cli, "serve_clusters", fake_serve)
        rc = main(["--clusters", "Venus", "--supervised", "-q",
                   "--max-retries", "7", "--retry-base", "0.2",
                   "--retry-cap", "3.5"])
        assert rc == 0
        sup = captured["supervision"]
        assert (sup.max_retries, sup.backoff_base_s, sup.backoff_cap_s) == (
            7, 0.2, 3.5)
        capsys.readouterr()

    def test_fault_plan_implies_supervised(self, monkeypatch, capsys):
        import repro.serve.__main__ as cli

        plan = FaultPlan(faults=(FaultSpec(key="Venus", kind="crash", at=1),))
        captured = {}

        def fake_serve(clusters, **kw):
            captured.update(kw)
            return [_FakeReport()]

        monkeypatch.setattr(cli, "serve_clusters", fake_serve)
        assert main(["--clusters", "Venus", "-q",
                     "--fault-plan", plan.to_json()]) == 0
        assert captured["supervised"] is True
        assert captured["fault_plan"] == plan
        capsys.readouterr()

    def test_net_flags_parse(self):
        args = build_parser().parse_args(
            ["--net", "--workers", "3", "--queue-bound", "9"])
        assert (args.net, args.workers, args.queue_bound) == (True, 3, 9)

    def test_replication_flags_flow_into_net_serve(self, monkeypatch, capsys):
        import repro.serve.net as net_mod
        from repro.serve import NetStats

        captured = {}

        def fake_serve(clusters, config, **kw):
            captured["clusters"] = list(clusters)
            captured["config"] = config
            captured.update(kw)
            return [_FakeReport()], NetStats()

        monkeypatch.setattr(net_mod, "serve_clusters_net", fake_serve)
        rc = main(["--clusters", "Venus", "--net", "-q",
                   "--replicas", "3", "--replicate", "central"])
        assert rc == 0
        assert captured["replicas"] == 3
        assert captured["config"].replicate == "central"
        capsys.readouterr()
