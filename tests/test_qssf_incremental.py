"""QSSF incremental-refit tests: continued boosting vs scratch oracle.

The serving loop's default QSSF refresh path advances the fitted GBDT
with :meth:`~repro.ml.gbdt.GBDTRegressor.fit_more` on the newly
finished jobs only (``GBDTParams`` preserved, encoders frozen).  The
scratch refit on the full history remains the correctness oracle: the
incremental model is required to stay in a tight band around it on a
real-trace prefix, not to reproduce it bit-exactly (the tree schedule
differs once the training matrix grows mid-stream).
"""

import numpy as np
import pytest

from repro.frame import Table
from repro.framework import QSSFService
from repro.ml.gbdt import GBDTParams
from repro.sched.estimators import MLEstimator
from repro.traces import SECONDS_PER_DAY, slice_period

from helpers import make_trace

GBDT = GBDTParams(n_estimators=40, learning_rate=0.12, max_depth=5,
                  min_samples_leaf=10)


@pytest.fixture(scope="module")
def venus_prefix():
    """A real-trace prefix: first 30 days of the Venus GPU trace."""
    from repro.experiments import common

    gpu = common.cluster_gpu_trace("Venus")
    return slice_period(gpu, 0, 30 * SECONDS_PER_DAY)


def _smape(pred, truth):
    return float(
        np.mean(2.0 * np.abs(pred - truth) / (np.abs(pred) + np.abs(truth)))
    )


class TestMLEstimatorUpdate:
    def test_band_vs_scratch_on_real_prefix(self, venus_prefix):
        head = slice_period(venus_prefix, 0, 18 * SECONDS_PER_DAY)
        delta = slice_period(
            venus_prefix, 18 * SECONDS_PER_DAY, 24 * SECONDS_PER_DAY
        )
        probe = slice_period(
            venus_prefix, 24 * SECONDS_PER_DAY, 30 * SECONDS_PER_DAY
        )
        scratch = MLEstimator(GBDT).fit(
            slice_period(venus_prefix, 0, 24 * SECONDS_PER_DAY)
        )
        warm = MLEstimator(GBDT).fit(head).update(delta)

        truth = probe["duration"].astype(float)
        err_scratch = _smape(scratch.estimate_many(probe), truth)
        err_warm = _smape(warm.estimate_many(probe), truth)
        # parity band: continued boosting must track the scratch oracle
        assert err_warm <= err_scratch * 1.15 + 0.02
        # and the two models must broadly agree job-by-job (log scale)
        ls = np.log1p(scratch.estimate_many(probe))
        lw = np.log1p(warm.estimate_many(probe))
        assert float(np.corrcoef(ls, lw)[0, 1]) > 0.9

    def test_update_grows_ensemble_preserving_params(self, venus_prefix):
        head = slice_period(venus_prefix, 0, 10 * SECONDS_PER_DAY)
        delta = slice_period(
            venus_prefix, 10 * SECONDS_PER_DAY, 12 * SECONDS_PER_DAY
        )
        est = MLEstimator(GBDT).fit(head)
        before = len(est.model.trees_)
        est.update(delta, n_more=5)
        assert len(est.model.trees_) == before + 5
        assert est.model.params == GBDT  # hyper-parameters preserved

    def test_default_budget_scales_with_delta(self, venus_prefix):
        head = slice_period(venus_prefix, 0, 10 * SECONDS_PER_DAY)
        delta = slice_period(
            venus_prefix, 10 * SECONDS_PER_DAY, 11 * SECONDS_PER_DAY
        )
        est = MLEstimator(GBDT).fit(head)
        before = len(est.model.trees_)
        est.update(delta)
        grown = len(est.model.trees_) - before
        assert 1 <= grown < GBDT.n_estimators

    def test_update_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            MLEstimator(GBDT).update(make_trace([(0, 1, 10.0)]))

    def test_empty_update_is_noop(self, venus_prefix):
        head = slice_period(venus_prefix, 0, 10 * SECONDS_PER_DAY)
        est = MLEstimator(GBDT).fit(head)
        before = len(est.model.trees_)
        est.update(head.head(0))
        assert len(est.model.trees_) == before


class TestQSSFServiceRefitModes:
    def test_knob_validation(self):
        with pytest.raises(ValueError, match="refit_mode"):
            QSSFService(refit_mode="warm")

    def test_supports_incremental_tracks_mode(self):
        assert QSSFService().supports_incremental
        assert not QSSFService(refit_mode="scratch").supports_incremental

    def test_apply_update_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            QSSFService().apply_update(make_trace([(0, 1, 10.0)]))

    def test_apply_update_advances_gbdt_only(self):
        history = make_trace(
            [(i * 60, 1 + (i % 4), 30.0 + 40.0 * (i % 5)) for i in range(120)]
        )
        delta = make_trace(
            [(8000 + i * 60, 1 + (i % 4), 25.0 + 30.0 * (i % 3)) for i in range(30)]
        )
        svc = QSSFService(lam=0.5, gbdt_params=GBDT).fit(history)
        trees_before = len(svc.scheduler.ml.model.trees_)
        svc.apply_update(delta)
        assert len(svc.scheduler.ml.model.trees_) > trees_before

    def test_apply_update_noop_at_lam_one(self):
        history = make_trace([(i * 60, 1, 30.0) for i in range(40)])
        svc = QSSFService(lam=1.0).fit(history)
        assert svc.scheduler.ml is None
        svc.apply_update(make_trace([(0, 1, 10.0)]))  # must not raise

    def test_engine_incremental_matches_scratch_band(self, venus_prefix):
        """End-to-end band check through the service interface on a real
        prefix: incremental refresh vs scratch refresh, probed on the
        jobs that follow."""
        head = slice_period(venus_prefix, 0, 18 * SECONDS_PER_DAY)
        delta_tbl = slice_period(
            venus_prefix, 18 * SECONDS_PER_DAY, 24 * SECONDS_PER_DAY
        )
        probe = slice_period(
            venus_prefix, 24 * SECONDS_PER_DAY, 30 * SECONDS_PER_DAY
        )
        full = slice_period(venus_prefix, 0, 24 * SECONDS_PER_DAY)

        inc = QSSFService(lam=0.5, gbdt_params=GBDT).fit(head)
        rows = [delta_tbl.row(i) for i in range(len(delta_tbl))]
        for r in rows:  # the serving loop feeds finishes via observe()
            inc.observe(r)
        inc.apply_update(Table.from_rows(rows))

        scratch = QSSFService(lam=0.5, gbdt_params=GBDT,
                              refit_mode="scratch").fit(full)

        truth = probe["duration"].astype(float) * probe["gpu_num"].astype(float)
        err_inc = _smape(inc.predict(probe), truth)
        err_scratch = _smape(scratch.predict(probe), truth)
        assert err_inc <= err_scratch * 1.2 + 0.02
