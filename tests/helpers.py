"""Shared builders for simulator tests.

``make_spec``/``make_trace`` used to live in ``test_sim_engine.py`` and
were pulled in by sibling modules through a relative import, which fails
under rootless pytest collection ("attempted relative import with no
known parent package").  They live here so every module can import them
absolutely (``from helpers import make_spec, make_trace``).

Note this module is deliberately *not* named ``conftest``: pytest's
prepend import mode loads both ``benchmarks/conftest.py`` and
``tests/conftest.py`` under the module name ``conftest``, so a plain
``from conftest import ...`` in a test file resolves to whichever
directory was collected first (``benchmarks/``, alphabetically).
"""

import numpy as np

from repro.frame import Table
from repro.traces import ClusterSpec, VCSpec

__all__ = ["make_spec", "make_trace"]


def make_spec(nodes=2, gpn=8, vcs=1):
    return ClusterSpec(
        name="T",
        gpus_per_node=gpn,
        vcs=tuple(
            VCSpec(f"vc{i}", num_nodes=nodes, gpus_per_node=gpn) for i in range(vcs)
        ),
    )


def make_trace(rows):
    """rows: list of (submit, gpus, duration[, vc])."""
    n = len(rows)
    return Table(
        {
            "job_id": np.array([f"j{i}" for i in range(n)]),
            "cluster": np.full(n, "T"),
            "vc": np.array([r[3] if len(r) > 3 else "vc0" for r in rows]),
            "user": np.full(n, "u"),
            "name": np.array([f"n{i}" for i in range(n)]),
            "gpu_num": np.array([r[1] for r in rows], dtype=np.int64),
            "cpu_num": np.array([max(1, r[1]) for r in rows], dtype=np.int64),
            "node_num": np.array([max(1, -(-r[1] // 8)) for r in rows], dtype=np.int64),
            "submit_time": np.array([r[0] for r in rows], dtype=np.int64),
            "duration": np.array([float(r[2]) for r in rows]),
            "status": np.full(n, "completed"),
        }
    )
