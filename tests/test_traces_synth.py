"""Calibration and invariant tests for the synthetic Helios generator.

These assert the *paper-reported shapes* (loose bands, not exact numbers):
see DESIGN.md §5 for the fidelity targets.
"""

import numpy as np
import pytest

from repro.frame import top_k_share
from repro.stats import hourly_profile
from repro.traces import (
    CANCELED,
    COMPLETED,
    FAILED,
    HeliosTraceGenerator,
    SynthParams,
    gpu_time,
    is_cpu_job,
    is_gpu_job,
    sequence_within_group,
    validate_trace,
)


@pytest.fixture(scope="module")
def generator():
    return HeliosTraceGenerator(SynthParams(months=2, scale=0.08, seed=3))


@pytest.fixture(scope="module")
def traces(generator):
    return generator.generate()


@pytest.fixture(scope="module")
def venus(traces):
    return traces["Venus"]


class TestInvariants:
    def test_all_clusters_validate(self, generator, traces):
        for name, tr in traces.items():
            validate_trace(tr, generator.specs[name])

    def test_submit_times_sorted_and_in_horizon(self, generator, traces):
        horizon = generator.params.horizon_seconds
        for tr in traces.values():
            t = tr["submit_time"]
            assert np.all(np.diff(t) >= 0)
            assert t.min() >= 0 and t.max() < horizon

    def test_deterministic(self):
        p = SynthParams(months=1, scale=0.05, seed=9)
        a = HeliosTraceGenerator(p).generate_cluster("Venus")
        b = HeliosTraceGenerator(p).generate_cluster("Venus")
        assert a == b

    def test_different_seeds_differ(self):
        a = HeliosTraceGenerator(SynthParams(months=1, scale=0.05, seed=1)).generate_cluster("Venus")
        b = HeliosTraceGenerator(SynthParams(months=1, scale=0.05, seed=2)).generate_cluster("Venus")
        assert len(a) != len(b) or not np.array_equal(a["duration"], b["duration"])

    def test_unknown_cluster_raises(self, generator):
        with pytest.raises(KeyError):
            generator.generate_cluster("Pluto")

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SynthParams(months=0)
        with pytest.raises(ValueError):
            SynthParams(scale=-1)


class TestOfferedLoad:
    def test_utilization_targets(self, generator, traces):
        """Offered GPU load must land near the Fig 2a utilization targets."""
        from repro.traces.synth import TARGET_UTILIZATION

        horizon = generator.params.horizon_seconds
        for name, tr in traces.items():
            spec = generator.specs[name]
            offered = gpu_time(tr).sum() / (spec.num_gpus * horizon)
            assert offered == pytest.approx(TARGET_UTILIZATION[name], abs=0.08)

    def test_saturn_busiest(self, generator, traces):
        horizon = generator.params.horizon_seconds
        loads = {
            name: gpu_time(tr).sum() / (generator.specs[name].num_gpus * horizon)
            for name, tr in traces.items()
        }
        assert max(loads, key=loads.get) == "Saturn"


class TestDurations:
    def test_gpu_median_scale(self, venus):
        """Paper: GPU-job median 206 s; ours must be the same order."""
        gj = venus.filter(is_gpu_job(venus))
        med = float(np.median(gj["duration"]))
        assert 60 <= med <= 900

    def test_gpu_mean_much_larger_than_median(self, venus):
        gj = venus.filter(is_gpu_job(venus))
        assert gj["duration"].mean() > 5 * np.median(gj["duration"])

    def test_three_quarters_under_1000s(self, traces):
        """§3.2.1: roughly three-quarters of GPU jobs last < 1000 s
        (job-weighted aggregate across the four clusters)."""
        short = total = 0
        for tr in traces.values():
            gj = tr.filter(is_gpu_job(tr))
            short += int(np.sum(gj["duration"] < 1000.0))
            total += len(gj)
        assert 0.55 <= short / total <= 0.95

    def test_gpu_jobs_longer_than_cpu_jobs(self, traces):
        """§3.2.1: GPU mean duration ~10× CPU mean duration."""
        for tr in traces.values():
            gj = tr.filter(is_gpu_job(tr))
            cj = tr.filter(is_cpu_job(tr))
            assert gj["duration"].mean() > 3 * cj["duration"].mean()

    def test_earth_cpu_jobs_one_second(self, traces):
        """§3.2.1: nearly 90% of Earth CPU jobs run ~1 second."""
        cj = traces["Earth"].filter(is_cpu_job(traces["Earth"]))
        assert np.mean(cj["duration"] <= 3.0) > 0.75

    def test_max_duration_clamped(self, traces):
        for tr in traces.values():
            assert tr["duration"].max() <= 50 * 86400


class TestSizes:
    def test_single_gpu_majority_of_counts(self, traces):
        """Fig 6a: >50% single-GPU jobs in each cluster (90% in Earth)."""
        singles = {}
        for name, tr in traces.items():
            gj = tr.filter(is_gpu_job(tr))
            singles[name] = float(np.mean(gj["gpu_num"] == 1))
        assert singles["Earth"] > 0.85
        assert np.mean(list(singles.values())) > 0.5

    def test_large_jobs_dominate_gpu_time(self, traces):
        """Fig 6b / Implication #4: multi-GPU jobs consume most GPU time."""
        for name, tr in traces.items():
            if name == "Earth":
                continue  # Earth is the single-GPU outlier by design
            gj = tr.filter(is_gpu_job(tr))
            gt = gpu_time(gj)
            multi_share = gt[gj["gpu_num"] > 1].sum() / gt.sum()
            assert multi_share > 0.5

    def test_single_gpu_small_time_share(self, traces):
        """Fig 6b: single-GPU jobs occupy only a small share of GPU time."""
        for name, tr in traces.items():
            gj = tr.filter(is_gpu_job(tr))
            gt = gpu_time(gj)
            single_share = gt[gj["gpu_num"] == 1].sum() / gt.sum()
            bound = 0.40 if name != "Earth" else 0.95
            assert single_share < bound

    def test_sizes_are_powers_of_two(self, venus):
        gj = venus.filter(is_gpu_job(venus))
        sizes = np.unique(gj["gpu_num"])
        assert all((s & (s - 1)) == 0 for s in sizes)

    def test_jobs_fit_their_vc(self, generator, traces):
        for name, tr in traces.items():
            spec = generator.specs[name]
            for vc in spec.vcs:
                sub = tr.filter(tr["vc"] == vc.name)
                if len(sub):
                    assert sub["gpu_num"].max() <= vc.num_gpus


class TestStatuses:
    def test_gpu_unsuccessful_much_higher_than_cpu(self, traces):
        """Fig 7a: unsuccessful GPU jobs ~37.6% vs CPU ~9.1%."""
        for tr in traces.values():
            gj = tr.filter(is_gpu_job(tr))
            cj = tr.filter(is_cpu_job(tr))
            gpu_bad = float(np.mean(gj["status"] != COMPLETED))
            cpu_bad = float(np.mean(cj["status"] != COMPLETED))
            assert gpu_bad > 0.25
            assert cpu_bad < 0.15
            assert gpu_bad > 2 * cpu_bad

    def test_completion_falls_with_gpu_count(self, traces):
        """Fig 7b: large jobs complete less, get canceled more."""
        tr = traces["Saturn"]
        gj = tr.filter(is_gpu_job(tr))
        small = gj.filter(gj["gpu_num"] <= 2)
        large = gj.filter(gj["gpu_num"] >= 32)
        if len(large) > 50:
            comp_small = np.mean(small["status"] == COMPLETED)
            comp_large = np.mean(large["status"] == COMPLETED)
            canc_large = np.mean(large["status"] == CANCELED)
            assert comp_large < comp_small
            assert canc_large > 0.35

    def test_failed_jobs_are_short(self, venus):
        """§3.2.2: most failed jobs are terminated within a short time."""
        gj = venus.filter(is_gpu_job(venus))
        failed = gj.filter(gj["status"] == FAILED)
        completed = gj.filter(gj["status"] == COMPLETED)
        assert np.median(failed["duration"]) < np.median(completed["duration"])

    def test_gpu_time_share_by_status(self, traces):
        """Fig 1b Helios: ~51% completed / ~39% canceled / ~9% failed."""
        gt_by = {COMPLETED: 0.0, CANCELED: 0.0, FAILED: 0.0}
        for tr in traces.values():
            gj = tr.filter(is_gpu_job(tr))
            gt = gpu_time(gj)
            for s in gt_by:
                gt_by[s] += float(gt[gj["status"] == s].sum())
        total = sum(gt_by.values())
        assert 0.45 <= gt_by[COMPLETED] / total <= 0.80
        assert 0.12 <= gt_by[CANCELED] / total <= 0.45
        assert 0.03 <= gt_by[FAILED] / total <= 0.20


class TestUsers:
    def test_user_counts(self, traces):
        for tr in traces.values():
            assert len(np.unique(tr["user"])) >= 20

    def test_gpu_time_concentration(self, venus):
        """Fig 8a: top 5% of users consume roughly half the GPU time."""
        gj = venus.filter(is_gpu_job(venus))
        share = top_k_share(gj["user"], gpu_time(gj), 0.05)
        assert 0.25 <= share <= 0.9

    def test_cpu_time_more_concentrated_than_gpu(self, traces):
        """Fig 8b: CPU time is far more concentrated among users."""
        tr = traces["Saturn"]
        gj = tr.filter(is_gpu_job(tr))
        cj = tr.filter(is_cpu_job(tr))
        gshare = top_k_share(gj["user"], gpu_time(gj), 0.05)
        cshare = top_k_share(cj["user"], cj["duration"] * cj["cpu_num"], 0.05)
        assert cshare > gshare

    def test_cpu_users_are_a_subset(self, traces):
        """§3.3: only ~25% of users run CPU jobs."""
        tr = traces["Venus"]
        gpu_users = set(np.unique(tr.filter(is_gpu_job(tr))["user"]))
        cpu_users = set(np.unique(tr.filter(is_cpu_job(tr))["user"]))
        assert len(cpu_users) < 0.6 * len(gpu_users | cpu_users)


class TestTemporalPatterns:
    def test_diurnal_submission_dip_at_night(self, venus):
        """Fig 2b: submission rate drops to its lowest point at night."""
        prof = hourly_profile(venus["submit_time"])
        night = prof[1:6].mean()
        day = prof[9:18].mean()
        assert night < 0.6 * day

    def test_recurrent_names(self, venus):
        """Recurrent jobs share name stems (enables QSSF estimators)."""
        gj = venus.filter(is_gpu_job(venus))
        stems = np.array([n.rsplit("_", 1)[0] for n in gj["name"][:2000]])
        _, counts = np.unique(stems, return_counts=True)
        assert counts.max() >= 10


class TestSequenceWithinGroup:
    def test_basic(self):
        out = sequence_within_group(np.array([5, 3, 5, 5, 3]))
        assert out.tolist() == [0, 0, 1, 2, 1]

    def test_single_group(self):
        assert sequence_within_group(np.zeros(4, dtype=int)).tolist() == [0, 1, 2, 3]

    def test_all_distinct(self):
        assert sequence_within_group(np.array([3, 1, 2])).tolist() == [0, 0, 0]


class TestNodeEvents:
    def _events(self, **kw):
        from repro.traces import synthesize_node_events

        args = dict(num_nodes=20, horizon_seconds=7 * 86_400.0, seed=5,
                    burst_rate_per_day=4.0)
        args.update(kw)
        return synthesize_node_events(**args)

    def test_deterministic(self):
        assert self._events() == self._events()
        assert self._events(seed=6) != self._events(seed=5)

    def test_schema_and_ranges(self):
        ev = self._events()
        assert set(ev.columns) == {"time", "node", "up"}
        assert len(ev) > 0
        assert np.all(np.diff(ev["time"]) >= 0)
        assert ev["node"].min() >= 0 and ev["node"].max() < 20
        assert set(np.unique(ev["up"])) <= {0, 1}
        assert ev["time"].min() >= 0
        # failures land inside the horizon; the matching repairs may
        # spill past it (stream assembly clips the high end)
        assert ev["time"][ev["up"] == 0].max() < 7 * 86_400.0

    def test_per_node_alternation_starts_down(self):
        """Every node's event sequence is down, up, down, up, ... — a
        node never fails twice without a repair in between."""
        ev = self._events()
        for node in np.unique(ev["node"]):
            ups = ev["up"][ev["node"] == node]
            assert np.array_equal(ups, np.arange(len(ups)) % 2)

    def test_repairs_after_failures(self):
        ev = self._events()
        for node in np.unique(ev["node"]):
            times = ev["time"][ev["node"] == node]
            assert np.all(np.diff(times) > 0)  # strictly later repairs

    def test_validation(self):
        from repro.traces import synthesize_node_events

        with pytest.raises(ValueError, match="num_nodes"):
            synthesize_node_events(0, 1000.0, seed=1)
        with pytest.raises(ValueError, match="horizon"):
            synthesize_node_events(4, 0.0, seed=1)
        with pytest.raises(ValueError, match="burst_rate_per_day"):
            synthesize_node_events(4, 1000.0, seed=1, burst_rate_per_day=-1.0)

    def test_generator_method_unknown_cluster(self, generator):
        with pytest.raises(KeyError, match="unknown cluster"):
            generator.generate_node_events("Pluto")

    def test_independent_of_job_trace(self, generator):
        """Node events derive only from (seed, cluster): generating the
        job trace first must not change them."""
        p = generator.params
        a = HeliosTraceGenerator(p).generate_node_events("Venus")
        g = HeliosTraceGenerator(p)
        g.generate_cluster("Venus")
        b = g.generate_node_events("Venus")
        assert a == b
