"""Tests for the experiment orchestrator: cache integration, precursor
warming, failure isolation, and serial-vs-parallel determinism."""

import numpy as np
import pytest

from repro.experiments import (
    ArtifactCache,
    ExperimentOrchestrator,
    ExperimentSpec,
    SPECS,
    smoke_ids,
)
from repro.experiments import common, registry
from repro.experiments.cache import dumps_payload
from repro.experiments.orchestrator import _run_seeded

#: Small deterministic subset: table1 needs no precursors, fig5/fig6 share
#: the four cluster traces — enough to exercise cache, precursor dedup,
#: and the forked pool without replaying any scheduler.
SUBSET = ["table1", "fig5", "fig6"]


class TestRegistryMetadata:
    def test_every_spec_declares_valid_inputs(self):
        for spec in SPECS.values():
            for token in spec.inputs:
                # raises KeyError on an unknown precursor function
                common._parse_precursor(token)

    def test_cost_tiers_cover_all(self):
        assert {s.cost for s in SPECS.values()} <= {"cheap", "medium", "heavy"}

    def test_smoke_profile_is_cheap(self):
        assert set(smoke_ids()) <= set(SPECS)
        for eid in smoke_ids():
            assert not any(
                tok.split(":")[0].endswith("replay") or tok.startswith("ces_report")
                for tok in SPECS[eid].inputs
            ), f"{eid} is in the smoke profile but needs a replay"


class TestOrchestratorCache:
    def test_cold_then_warm(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        orch = ExperimentOrchestrator(cache=cache, jobs=1)
        cold = orch.run(["table1"])
        assert [r.status for r in cold.reports] == ["computed"]
        warm = ExperimentOrchestrator(cache=ArtifactCache(tmp_path), jobs=1).run(
            ["table1"]
        )
        assert [r.status for r in warm.reports] == ["cached"]
        assert dumps_payload(cold.payloads["table1"]) == dumps_payload(
            warm.payloads["table1"]
        )

    def test_force_recomputes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        ExperimentOrchestrator(cache=cache, jobs=1).run(["table1"])
        forced = ExperimentOrchestrator(
            cache=ArtifactCache(tmp_path), jobs=1, force=True
        ).run(["table1"])
        assert [r.status for r in forced.reports] == ["computed"]

    def test_no_cache_always_computes(self):
        res = ExperimentOrchestrator(jobs=1).run(["table1"])
        assert [r.status for r in res.reports] == ["computed"]
        assert res.cache_stats == {}

    def test_unknown_experiment_fails_fast(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            ExperimentOrchestrator(jobs=1).run(["fig99"])


class TestProfile:
    def test_profile_breaks_down_cache_hits_and_wall_time(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        ExperimentOrchestrator(cache=cache, jobs=1).run(["table1"])
        res = ExperimentOrchestrator(cache=ArtifactCache(tmp_path), jobs=1).run(
            ["table1", "fig5"]
        )
        prof = res.profile()
        assert prof["cached"] == 1 and prof["computed"] == 1
        assert prof["cache_hit_rate"] == pytest.approx(0.5)
        # sorted slowest-first; the cache hit is (much) cheaper
        assert [e["exp_id"] for e in prof["exhibits"]] == ["fig5", "table1"]
        assert prof["compute_seconds"] >= prof["exhibits"][0]["seconds"]
        # the same breakdown is embedded in the JSON report
        assert res.as_dict()["profile"]["exhibits"] == prof["exhibits"]

    def test_profile_records_precursor_warm_phase(self, tmp_path):
        from repro.framework.parallel import fork_available

        if not fork_available():
            pytest.skip("fork pool unavailable")
        common.clear_scenario_caches()  # cold memos: the warm phase must run
        res = ExperimentOrchestrator(jobs=2).run(["fig5", "fig6"])
        prof = res.profile()
        tokens = {p["token"] for p in prof["precursors"]}
        assert any(t.startswith("cluster_trace:") for t in tokens)
        assert all(p["seconds"] >= 0 for p in prof["precursors"])
        assert prof["precursor_seconds"] >= 0


class TestFailureIsolation:
    def test_failed_experiment_reported_not_raised(self, monkeypatch, tmp_path):
        def boom():
            raise RuntimeError("exhibit exploded")

        monkeypatch.setitem(
            registry.SPECS, "boom", ExperimentSpec("boom", boom, "cheap", ())
        )
        res = ExperimentOrchestrator(cache=ArtifactCache(tmp_path), jobs=1).run(
            ["table1", "boom"]
        )
        by_id = {r.exp_id: r for r in res.reports}
        assert by_id["table1"].status == "computed"
        assert by_id["boom"].status == "failed"
        assert "exhibit exploded" in by_id["boom"].error
        assert "boom" not in res.payloads
        assert res.failed == [by_id["boom"]]

    def test_failing_precursor_does_not_abort_parallel_run(
        self, monkeypatch, tmp_path
    ):
        """A bad shared input fails its exhibit, not the whole pool run."""

        def needs_bad_precursor():
            return {"text": str(common.compute_precursor("cluster_trace:Nope"))}

        monkeypatch.setitem(
            registry.SPECS,
            "badpre",
            ExperimentSpec(
                "badpre", needs_bad_precursor, "cheap", ("cluster_trace:Nope",)
            ),
        )
        res = ExperimentOrchestrator(cache=ArtifactCache(tmp_path), jobs=2).run(
            ["badpre", "table1"]
        )
        by_id = {r.exp_id: r for r in res.reports}
        assert by_id["table1"].status == "computed"
        assert by_id["badpre"].status == "failed"
        assert by_id["badpre"].error


@pytest.mark.slow
class TestParallelDeterminism:
    def test_jobs4_payloads_identical_to_serial(self, tmp_path):
        """`run --jobs 4` must reproduce `--jobs 1` bit-for-bit (smoke subset)."""
        serial = ExperimentOrchestrator(jobs=1).run(SUBSET)
        serial_bytes = {e: dumps_payload(serial.payloads[e]) for e in SUBSET}

        # Drop every memoized trace so the parallel run re-derives the
        # shared precursors through the worker pool + warming path.
        common.clear_scenario_caches()
        parallel = ExperimentOrchestrator(
            cache=ArtifactCache(tmp_path), jobs=4
        ).run(SUBSET)
        assert [r.status for r in parallel.reports] == ["computed"] * len(SUBSET)
        for eid in SUBSET:
            assert dumps_payload(parallel.payloads[eid]) == serial_bytes[eid], eid

        # precursors declared by the subset are now warm in the parent
        for token in SPECS["fig5"].inputs:
            assert common.is_warm(token)

        # and the artifacts written by the parallel run read back as the
        # same bytes a fresh serial computation produces
        cache = ArtifactCache(tmp_path)
        for report in parallel.reports:
            assert cache.load_bytes(report.cache_key) == serial_bytes[report.exp_id]

    def test_replay_exhibit_identical_across_precursor_pool(self):
        """Guard the invariant behind parallel byte-identity for exhibits
        whose precursors are simulator replays: computing ``full_replay``
        in an unseeded pool worker (parallel) must yield the same payload
        as computing it lazily under the experiment's seed (serial) —
        i.e. no precursor may consume seeded global randomness.  fig6 is
        paired in so both the precursor and experiment pools engage
        (a single exhibit would fall back to the in-process path)."""
        ids = ["fig4", "fig6"]
        serial = ExperimentOrchestrator(jobs=1).run(ids)
        serial_blobs = {e: dumps_payload(serial.payloads[e]) for e in ids}

        common.clear_scenario_caches()
        parallel = ExperimentOrchestrator(jobs=2).run(ids)
        for eid in ids:
            assert dumps_payload(parallel.payloads[eid]) == serial_blobs[eid], eid


class TestSeeding:
    def test_run_seeded_pins_global_rng(self):
        _run_seeded("table1")
        a = np.random.random()
        _run_seeded("table1")
        b = np.random.random()
        assert a == b


class TestPrecursorWaves:
    def test_deps_expand_transitively(self):
        tokens = common.expand_precursors(["september_replay:Venus:QSSF"])
        assert "cluster_trace:Venus" in tokens
        assert "cluster_gpu_trace:Venus" in tokens
        assert "qssf_scheduler:Venus" in tokens
        # dependencies come before their dependents
        assert tokens.index("cluster_trace:Venus") < tokens.index(
            "cluster_gpu_trace:Venus"
        )
        assert tokens.index("qssf_scheduler:Venus") < tokens.index(
            "september_replay:Venus:QSSF"
        )

    def test_non_qssf_replay_skips_scheduler(self):
        tokens = common.expand_precursors(["september_replay:Earth:FIFO"])
        assert "qssf_scheduler:Earth" not in tokens

    def test_ces_philly_depends_on_its_replay(self):
        tokens = common.expand_precursors(["ces_report:Philly"])
        assert f"philly_replay:FIFO:{common.PHILLY_DAYS}" in tokens
        assert "philly_trace" in tokens

    def test_waves_order_traces_before_replays(self):
        tokens = common.expand_precursors(
            ["ces_report:Earth", "september_replay:Venus:QSSF", "philly_replay:SJF"]
        )
        waves = list(common.precursor_waves(tokens))
        ranks = [w for w, _, _ in waves]
        assert ranks == sorted(ranks)
        position = {
            tok: i for i, (_, toks, _) in enumerate(waves) for tok in toks
        }
        for trace in ("cluster_trace:Venus", "philly_trace"):
            for replay in ("september_replay:Venus:QSSF", "philly_replay:SJF"):
                assert position[trace] < position[replay]
        # the trained scheduler is warmed strictly before the replay using it
        assert (
            position["qssf_scheduler:Venus"]
            < position["september_replay:Venus:QSSF"]
        )
        # the GPU-job filter wave is the cheap in-parent one
        gpu_waves = [
            in_parent
            for _, toks, in_parent in waves
            if any(t.startswith("cluster_gpu_trace") for t in toks)
        ]
        assert gpu_waves == [True]

    def test_deps_table_is_wave_monotone(self):
        """Structural invariant of the warm scheduler: every declared
        dependency names a registered precursor family and sits in a
        strictly earlier wave than its dependent.  (The dependency table
        mirrors the builder bodies in ``common.py`` by hand; this pins
        down at least its internal consistency.)"""
        samples = [
            "cluster_trace:Venus",
            "philly_trace",
            "cluster_gpu_trace:Venus",
            "full_replay:Venus",
            "qssf_scheduler:Venus",
            "september_replay:Venus:QSSF",
            "september_replay:Venus:FIFO",
            "philly_replay:SJF",
            f"philly_replay:FIFO:{common.PHILLY_DAYS}",
            "ces_report:Venus",
            "ces_report:Philly",
        ]
        for token in samples:
            wave = common.PRECURSOR_WAVES[token.partition(":")[0]]
            for dep in common.precursor_deps(token):
                dep_name = dep.partition(":")[0]
                assert dep_name in common.PRECURSOR_FNS, dep
                assert common.PRECURSOR_WAVES[dep_name] < wave, (token, dep)

    def test_every_registered_input_expands_cleanly(self):
        """Dep closure of the full registry only yields known precursors."""
        tokens = []
        for spec in SPECS.values():
            tokens.extend(spec.inputs)
        for token in common.expand_precursors(tokens):
            common._parse_precursor(token)  # raises on unknown functions

    def test_no_trace_recomputed_across_pool(self, monkeypatch, tmp_path):
        """Regression for the two-wave warm: with --jobs N, each trace
        token is computed exactly once across all worker processes —
        never once per replaying/consuming worker."""
        log = tmp_path / "memo.log"
        monkeypatch.setenv("REPRO_MEMO_LOG", str(log))
        common.clear_scenario_caches()
        try:
            res = ExperimentOrchestrator(jobs=2).run(["fig5", "fig6"])
        finally:
            monkeypatch.delenv("REPRO_MEMO_LOG")
        assert [r.status for r in res.reports] == ["computed", "computed"]
        computes: dict[str, int] = {}
        for line in log.read_text().splitlines():
            _pid, fn, key = line.split("\t", 2)
            computes[f"{fn}{key}"] = computes.get(f"{fn}{key}", 0) + 1
        trace_counts = {
            k: v for k, v in computes.items() if k.startswith("cluster_trace")
        }
        assert trace_counts, "expected the pool to compute cluster traces"
        assert all(v == 1 for v in trace_counts.values()), trace_counts
        # and the parent ended up warm for every declared input
        for token in SPECS["fig5"].inputs:
            assert common.is_warm(token)
