"""Tests for the experiment orchestrator: cache integration, precursor
warming, failure isolation, and serial-vs-parallel determinism."""

import numpy as np
import pytest

from repro.experiments import (
    ArtifactCache,
    ExperimentOrchestrator,
    ExperimentSpec,
    SPECS,
    smoke_ids,
)
from repro.experiments import common, registry
from repro.experiments.cache import dumps_payload
from repro.experiments.orchestrator import _run_seeded

#: Small deterministic subset: table1 needs no precursors, fig5/fig6 share
#: the four cluster traces — enough to exercise cache, precursor dedup,
#: and the forked pool without replaying any scheduler.
SUBSET = ["table1", "fig5", "fig6"]


class TestRegistryMetadata:
    def test_every_spec_declares_valid_inputs(self):
        for spec in SPECS.values():
            for token in spec.inputs:
                # raises KeyError on an unknown precursor function
                common._parse_precursor(token)

    def test_cost_tiers_cover_all(self):
        assert {s.cost for s in SPECS.values()} <= {"cheap", "medium", "heavy"}

    def test_smoke_profile_is_cheap(self):
        assert set(smoke_ids()) <= set(SPECS)
        for eid in smoke_ids():
            assert not any(
                tok.split(":")[0].endswith("replay") or tok.startswith("ces_report")
                for tok in SPECS[eid].inputs
            ), f"{eid} is in the smoke profile but needs a replay"


class TestOrchestratorCache:
    def test_cold_then_warm(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        orch = ExperimentOrchestrator(cache=cache, jobs=1)
        cold = orch.run(["table1"])
        assert [r.status for r in cold.reports] == ["computed"]
        warm = ExperimentOrchestrator(cache=ArtifactCache(tmp_path), jobs=1).run(
            ["table1"]
        )
        assert [r.status for r in warm.reports] == ["cached"]
        assert dumps_payload(cold.payloads["table1"]) == dumps_payload(
            warm.payloads["table1"]
        )

    def test_force_recomputes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        ExperimentOrchestrator(cache=cache, jobs=1).run(["table1"])
        forced = ExperimentOrchestrator(
            cache=ArtifactCache(tmp_path), jobs=1, force=True
        ).run(["table1"])
        assert [r.status for r in forced.reports] == ["computed"]

    def test_no_cache_always_computes(self):
        res = ExperimentOrchestrator(jobs=1).run(["table1"])
        assert [r.status for r in res.reports] == ["computed"]
        assert res.cache_stats == {}

    def test_unknown_experiment_fails_fast(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            ExperimentOrchestrator(jobs=1).run(["fig99"])


class TestFailureIsolation:
    def test_failed_experiment_reported_not_raised(self, monkeypatch, tmp_path):
        def boom():
            raise RuntimeError("exhibit exploded")

        monkeypatch.setitem(
            registry.SPECS, "boom", ExperimentSpec("boom", boom, "cheap", ())
        )
        res = ExperimentOrchestrator(cache=ArtifactCache(tmp_path), jobs=1).run(
            ["table1", "boom"]
        )
        by_id = {r.exp_id: r for r in res.reports}
        assert by_id["table1"].status == "computed"
        assert by_id["boom"].status == "failed"
        assert "exhibit exploded" in by_id["boom"].error
        assert "boom" not in res.payloads
        assert res.failed == [by_id["boom"]]

    def test_failing_precursor_does_not_abort_parallel_run(
        self, monkeypatch, tmp_path
    ):
        """A bad shared input fails its exhibit, not the whole pool run."""

        def needs_bad_precursor():
            return {"text": str(common.compute_precursor("cluster_trace:Nope"))}

        monkeypatch.setitem(
            registry.SPECS,
            "badpre",
            ExperimentSpec(
                "badpre", needs_bad_precursor, "cheap", ("cluster_trace:Nope",)
            ),
        )
        res = ExperimentOrchestrator(cache=ArtifactCache(tmp_path), jobs=2).run(
            ["badpre", "table1"]
        )
        by_id = {r.exp_id: r for r in res.reports}
        assert by_id["table1"].status == "computed"
        assert by_id["badpre"].status == "failed"
        assert by_id["badpre"].error


@pytest.mark.slow
class TestParallelDeterminism:
    def test_jobs4_payloads_identical_to_serial(self, tmp_path):
        """`run --jobs 4` must reproduce `--jobs 1` bit-for-bit (smoke subset)."""
        serial = ExperimentOrchestrator(jobs=1).run(SUBSET)
        serial_bytes = {e: dumps_payload(serial.payloads[e]) for e in SUBSET}

        # Drop every memoized trace so the parallel run re-derives the
        # shared precursors through the worker pool + warming path.
        common.clear_scenario_caches()
        parallel = ExperimentOrchestrator(
            cache=ArtifactCache(tmp_path), jobs=4
        ).run(SUBSET)
        assert [r.status for r in parallel.reports] == ["computed"] * len(SUBSET)
        for eid in SUBSET:
            assert dumps_payload(parallel.payloads[eid]) == serial_bytes[eid], eid

        # precursors declared by the subset are now warm in the parent
        for token in SPECS["fig5"].inputs:
            assert common.is_warm(token)

        # and the artifacts written by the parallel run read back as the
        # same bytes a fresh serial computation produces
        cache = ArtifactCache(tmp_path)
        for report in parallel.reports:
            assert cache.load_bytes(report.cache_key) == serial_bytes[report.exp_id]

    def test_replay_exhibit_identical_across_precursor_pool(self):
        """Guard the invariant behind parallel byte-identity for exhibits
        whose precursors are simulator replays: computing ``full_replay``
        in an unseeded pool worker (parallel) must yield the same payload
        as computing it lazily under the experiment's seed (serial) —
        i.e. no precursor may consume seeded global randomness.  fig6 is
        paired in so both the precursor and experiment pools engage
        (a single exhibit would fall back to the in-process path)."""
        ids = ["fig4", "fig6"]
        serial = ExperimentOrchestrator(jobs=1).run(ids)
        serial_blobs = {e: dumps_payload(serial.payloads[e]) for e in ids}

        common.clear_scenario_caches()
        parallel = ExperimentOrchestrator(jobs=2).run(ids)
        for eid in ids:
            assert dumps_payload(parallel.payloads[eid]) == serial_blobs[eid], eid


class TestSeeding:
    def test_run_seeded_pins_global_rng(self):
        _run_seeded("table1")
        a = np.random.random()
        _run_seeded("table1")
        b = np.random.random()
        assert a == b
