"""Tests for the binner and histogram regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import Binner, RegressionTree, TreeParams
from repro.ml.tree import HistogramCache


def _tree_arrays(tree):
    t = tree._tree
    return (t.feature, t.threshold_bin, t.left, t.right, t.value, t.is_leaf)


def _assert_same_tree(a, b):
    for x, y in zip(_tree_arrays(a), _tree_arrays(b)):
        np.testing.assert_array_equal(x, y)
    assert a.split_gains_ == b.split_gains_


class TestBinner:
    def test_fit_transform_shape(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        b = Binner(max_bins=16)
        Xb = b.fit_transform(X)
        assert Xb.shape == X.shape
        assert Xb.dtype == np.int32
        assert Xb.max() < 16

    def test_monotone_binning(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        Xb = Binner(max_bins=8).fit_transform(X)
        assert np.all(np.diff(Xb[:, 0]) >= 0)

    def test_constant_feature_single_bin(self):
        X = np.ones((20, 1))
        Xb = Binner(max_bins=8).fit_transform(X)
        assert set(Xb[:, 0].tolist()) <= {0}

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Binner().transform(np.zeros((2, 2)))

    def test_invalid_max_bins(self):
        with pytest.raises(ValueError):
            Binner(max_bins=1)

    def test_transform_unseen_values_clip_into_range(self):
        b = Binner(max_bins=4).fit(np.arange(10.0).reshape(-1, 1))
        out = b.transform(np.array([[-100.0], [100.0]]))
        assert out.min() >= 0
        assert out.max() <= b.n_bins - 1

    def test_split_semantics_consistent(self):
        """bin(x1) <= bin(x2) whenever x1 <= x2 across fit/transform data."""
        rng = np.random.default_rng(3)
        train = rng.normal(size=(200, 1))
        b = Binner(max_bins=32).fit(train)
        test = np.sort(rng.normal(size=(50, 1)), axis=0)
        bins = b.transform(test)[:, 0]
        assert np.all(np.diff(bins) >= 0)


class TestMissingValues:
    """NaN handling: a deterministic dedicated missing-value bin.

    Regression: ``Binner.fit`` drops NaNs when computing quantile edges,
    but ``transform`` used to route NaN through ``searchsorted`` — IEEE
    NaN compares greater than everything, so missing values silently
    aliased the *top* regular bin.
    """

    def test_nan_gets_dedicated_bin(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        X[::7, 0] = np.nan
        b = Binner(max_bins=16).fit(X)
        Xb = b.transform(X)
        miss = b.missing_bin(0)
        assert miss == b.edges_[0].size + 1
        nan_rows = np.isnan(X[:, 0])
        assert np.all(Xb[nan_rows, 0] == miss)
        assert np.all(Xb[~nan_rows, 0] < miss)

    def test_nan_does_not_alias_top_bin(self):
        """A huge finite value and NaN must land in different bins."""
        b = Binner(max_bins=8).fit(np.arange(50.0).reshape(-1, 1))
        out = b.transform(np.array([[1e12], [np.nan]]))
        assert out[0, 0] != out[1, 0]
        assert out[1, 0] == b.missing_bin(0)

    def test_missing_bin_reserved_even_without_nans_in_fit(self):
        """The missing bin exists regardless of the fit data, so a model
        fitted on clean data routes NaN deterministically at predict."""
        X = np.random.default_rng(1).normal(size=(60, 1))
        b = Binner(max_bins=8).fit(X)
        assert b.missing_bin(0) < b.n_bins
        out = b.transform(np.array([[np.nan]]))
        assert out[0, 0] == b.missing_bin(0)

    def test_round_trip_is_deterministic(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(80, 3))
        X[rng.random(X.shape) < 0.2] = np.nan
        b = Binner(max_bins=16).fit(X)
        np.testing.assert_array_equal(b.transform(X), b.transform(X))

    def test_tree_fit_with_nan_column_parity(self):
        """Split search threads the missing bin identically in both modes."""
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 3))
        # Target depends on missingness so splits on the NaN bin pay off.
        nan_mask = rng.random(300) < 0.3
        X[nan_mask, 0] = np.nan
        y = np.where(nan_mask, 5.0, X[:, 1]) + 0.1 * rng.normal(size=300)
        b = Binner(max_bins=16).fit(X)
        Xb = b.transform(X)
        p = TreeParams(max_depth=4, min_samples_leaf=5)
        ref = RegressionTree(p).fit(Xb, y, n_bins=b.n_bins, mode="reference")
        fast = RegressionTree(p).fit(Xb, y, n_bins=b.n_bins, mode="fast")
        _assert_same_tree(ref, fast)
        # The missingness signal is actually learnable: the tree must
        # separate the NaN rows (value near 5) from the rest.
        pred = ref.predict_binned(Xb)
        assert abs(pred[nan_mask].mean() - 5.0) < 0.5


class TestFastReferenceParity:
    """The fused fast split search is a byte-parity twin of the
    per-feature reference loop — including gain tie-breaking."""

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            RegressionTree().fit(
                np.zeros((4, 1), dtype=np.int32), np.zeros(4), mode="turbo"
            )

    def test_cache_shape_mismatch_rejected(self):
        Xb = np.zeros((4, 2), dtype=np.int32)
        cache = HistogramCache(np.zeros((3, 2), dtype=np.int32), 4)
        with pytest.raises(ValueError, match="shape"):
            RegressionTree().fit(Xb, np.zeros(4), n_bins=4, cache=cache)

    def test_cache_n_bins_mismatch_rejected(self):
        Xb = np.zeros((4, 2), dtype=np.int32)
        cache = HistogramCache(Xb, 4)
        with pytest.raises(ValueError, match="n_bins"):
            RegressionTree().fit(Xb, np.zeros(4), n_bins=8, cache=cache)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=9999))
    def test_seeded_fuzz_parity(self, seed):
        """Fuzz matrices engineered to produce gain ties (quantized and
        duplicated columns): ties must break identically — lowest
        feature, then lowest bin."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(30, 250))
        m = int(rng.integers(2, 8))
        X = rng.normal(size=(n, m))
        X[:, 0] = np.round(X[:, 0])  # coarse grid: repeated gain values
        if m >= 2:
            X[:, 1] = X[:, 0]  # duplicated column: cross-feature ties
        y = np.round(rng.normal(size=n), 1)
        b = Binner(max_bins=int(rng.integers(4, 32))).fit(X)
        Xb = b.transform(X)
        p = TreeParams(
            max_depth=int(rng.integers(2, 6)),
            min_samples_leaf=int(rng.integers(1, 8)),
        )
        ref = RegressionTree(p).fit(Xb, y, n_bins=b.n_bins, mode="reference")
        fast = RegressionTree(p).fit(Xb, y, n_bins=b.n_bins, mode="fast")
        cached = RegressionTree(p).fit(
            Xb, y, n_bins=b.n_bins, mode="fast",
            cache=HistogramCache(Xb, b.n_bins),
        )
        _assert_same_tree(ref, fast)
        _assert_same_tree(ref, cached)

    def test_parity_with_sample_indices(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(200, 4))
        y = rng.normal(size=200)
        b = Binner(max_bins=16).fit(X)
        Xb = b.transform(X)
        idx = rng.choice(200, size=120, replace=False)
        p = TreeParams(max_depth=4, min_samples_leaf=4)
        cache = HistogramCache(Xb, b.n_bins)
        ref = RegressionTree(p).fit(
            Xb, y, sample_indices=idx, n_bins=b.n_bins, mode="reference"
        )
        fast = RegressionTree(p).fit(
            Xb, y, sample_indices=idx, n_bins=b.n_bins, mode="fast", cache=cache
        )
        _assert_same_tree(ref, fast)

    def test_cache_append_matches_fresh_cache(self):
        rng = np.random.default_rng(12)
        Xb = rng.integers(0, 8, size=(50, 3)).astype(np.int32)
        extra = rng.integers(0, 8, size=(20, 3)).astype(np.int32)
        grown = HistogramCache(Xb, 8)
        grown.append(extra)
        fresh = HistogramCache(np.vstack([Xb, extra]), 8)
        np.testing.assert_array_equal(grown.base, fresh.base)


class TestTreeParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            TreeParams(max_depth=0)
        with pytest.raises(ValueError):
            TreeParams(min_samples_leaf=0)


class TestRegressionTree:
    def _fit(self, X, y, **kw):
        b = Binner(max_bins=64)
        Xb = b.fit_transform(X)
        tree = RegressionTree(TreeParams(**kw)).fit(Xb, y)
        return tree, b

    def test_perfect_step_function(self):
        X = np.linspace(0, 1, 200).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        tree, b = self._fit(X, y, max_depth=2, min_samples_leaf=5)
        pred = tree.predict_binned(b.transform(X))
        assert np.mean((pred - y) ** 2) < 1e-6

    def test_stump_on_constant_target(self):
        X = np.random.default_rng(0).normal(size=(100, 2))
        y = np.full(100, 7.0)
        tree, b = self._fit(X, y)
        assert tree.n_leaves == 1
        np.testing.assert_allclose(tree.predict_binned(b.transform(X)), 7.0)

    def test_depth_limit_respected(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        y = rng.normal(size=500)
        tree, _ = self._fit(X, y, max_depth=3, min_samples_leaf=2)
        assert tree.depth <= 3

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 1))
        y = rng.normal(size=100)
        tree, b = self._fit(X, y, max_depth=8, min_samples_leaf=30)
        Xb = b.transform(X)
        leaves = {}
        pred = tree.predict_binned(Xb)
        for v in np.unique(pred):
            leaves[v] = int(np.sum(pred == v))
        assert min(leaves.values()) >= 30

    def test_prediction_reduces_variance(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-2, 2, size=(1000, 2))
        y = np.sin(X[:, 0]) + 0.1 * rng.normal(size=1000)
        tree, b = self._fit(X, y, max_depth=6, min_samples_leaf=10)
        pred = tree.predict_binned(b.transform(X))
        assert np.mean((pred - y) ** 2) < 0.5 * np.var(y)

    def test_sample_indices_subsetting(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 1))
        y = X[:, 0].copy()
        b = Binner(max_bins=32)
        Xb = b.fit_transform(X)
        idx = np.arange(100)
        tree = RegressionTree(TreeParams(max_depth=2)).fit(Xb, y, sample_indices=idx)
        assert tree.n_nodes >= 1

    def test_empty_fit_gives_zero_stump(self):
        tree = RegressionTree().fit(np.zeros((0, 2), dtype=np.int32), np.zeros(0))
        assert tree.n_leaves == 1
        assert tree.predict_binned(np.zeros((3, 2), dtype=np.int32)).tolist() == [0, 0, 0]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((5, 2), dtype=np.int32), np.zeros(4))

    def test_predict_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict_binned(np.zeros((1, 1), dtype=np.int32))

    def test_feature_gains_identify_signal(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        y = 10.0 * X[:, 1]  # only feature 1 matters
        tree, _ = self._fit(X, y, max_depth=4)
        gains = tree.feature_gains()
        assert np.argmax(gains) == 1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=999))
    def test_leaf_prediction_is_mean_property(self, seed):
        """Property: per-leaf predictions equal the mean target in that leaf."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(120, 2))
        y = rng.normal(size=120)
        b = Binner(max_bins=16)
        Xb = b.fit_transform(X)
        tree = RegressionTree(TreeParams(max_depth=3, min_samples_leaf=5)).fit(Xb, y)
        pred = tree.predict_binned(Xb)
        for v in np.unique(pred):
            mask = pred == v
            assert y[mask].mean() == pytest.approx(v, abs=1e-9)
