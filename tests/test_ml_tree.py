"""Tests for the binner and histogram regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import Binner, RegressionTree, TreeParams


class TestBinner:
    def test_fit_transform_shape(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        b = Binner(max_bins=16)
        Xb = b.fit_transform(X)
        assert Xb.shape == X.shape
        assert Xb.dtype == np.int32
        assert Xb.max() < 16

    def test_monotone_binning(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        Xb = Binner(max_bins=8).fit_transform(X)
        assert np.all(np.diff(Xb[:, 0]) >= 0)

    def test_constant_feature_single_bin(self):
        X = np.ones((20, 1))
        Xb = Binner(max_bins=8).fit_transform(X)
        assert set(Xb[:, 0].tolist()) <= {0}

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Binner().transform(np.zeros((2, 2)))

    def test_invalid_max_bins(self):
        with pytest.raises(ValueError):
            Binner(max_bins=1)

    def test_transform_unseen_values_clip_into_range(self):
        b = Binner(max_bins=4).fit(np.arange(10.0).reshape(-1, 1))
        out = b.transform(np.array([[-100.0], [100.0]]))
        assert out.min() >= 0
        assert out.max() <= b.n_bins - 1

    def test_split_semantics_consistent(self):
        """bin(x1) <= bin(x2) whenever x1 <= x2 across fit/transform data."""
        rng = np.random.default_rng(3)
        train = rng.normal(size=(200, 1))
        b = Binner(max_bins=32).fit(train)
        test = np.sort(rng.normal(size=(50, 1)), axis=0)
        bins = b.transform(test)[:, 0]
        assert np.all(np.diff(bins) >= 0)


class TestTreeParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            TreeParams(max_depth=0)
        with pytest.raises(ValueError):
            TreeParams(min_samples_leaf=0)


class TestRegressionTree:
    def _fit(self, X, y, **kw):
        b = Binner(max_bins=64)
        Xb = b.fit_transform(X)
        tree = RegressionTree(TreeParams(**kw)).fit(Xb, y)
        return tree, b

    def test_perfect_step_function(self):
        X = np.linspace(0, 1, 200).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        tree, b = self._fit(X, y, max_depth=2, min_samples_leaf=5)
        pred = tree.predict_binned(b.transform(X))
        assert np.mean((pred - y) ** 2) < 1e-6

    def test_stump_on_constant_target(self):
        X = np.random.default_rng(0).normal(size=(100, 2))
        y = np.full(100, 7.0)
        tree, b = self._fit(X, y)
        assert tree.n_leaves == 1
        np.testing.assert_allclose(tree.predict_binned(b.transform(X)), 7.0)

    def test_depth_limit_respected(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        y = rng.normal(size=500)
        tree, _ = self._fit(X, y, max_depth=3, min_samples_leaf=2)
        assert tree.depth <= 3

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 1))
        y = rng.normal(size=100)
        tree, b = self._fit(X, y, max_depth=8, min_samples_leaf=30)
        Xb = b.transform(X)
        leaves = {}
        pred = tree.predict_binned(Xb)
        for v in np.unique(pred):
            leaves[v] = int(np.sum(pred == v))
        assert min(leaves.values()) >= 30

    def test_prediction_reduces_variance(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-2, 2, size=(1000, 2))
        y = np.sin(X[:, 0]) + 0.1 * rng.normal(size=1000)
        tree, b = self._fit(X, y, max_depth=6, min_samples_leaf=10)
        pred = tree.predict_binned(b.transform(X))
        assert np.mean((pred - y) ** 2) < 0.5 * np.var(y)

    def test_sample_indices_subsetting(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 1))
        y = X[:, 0].copy()
        b = Binner(max_bins=32)
        Xb = b.fit_transform(X)
        idx = np.arange(100)
        tree = RegressionTree(TreeParams(max_depth=2)).fit(Xb, y, sample_indices=idx)
        assert tree.n_nodes >= 1

    def test_empty_fit_gives_zero_stump(self):
        tree = RegressionTree().fit(np.zeros((0, 2), dtype=np.int32), np.zeros(0))
        assert tree.n_leaves == 1
        assert tree.predict_binned(np.zeros((3, 2), dtype=np.int32)).tolist() == [0, 0, 0]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((5, 2), dtype=np.int32), np.zeros(4))

    def test_predict_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict_binned(np.zeros((1, 1), dtype=np.int32))

    def test_feature_gains_identify_signal(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        y = 10.0 * X[:, 1]  # only feature 1 matters
        tree, _ = self._fit(X, y, max_depth=4)
        gains = tree.feature_gains()
        assert np.argmax(gains) == 1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=999))
    def test_leaf_prediction_is_mean_property(self, seed):
        """Property: per-leaf predictions equal the mean target in that leaf."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(120, 2))
        y = rng.normal(size=120)
        b = Binner(max_bins=16)
        Xb = b.fit_transform(X)
        tree = RegressionTree(TreeParams(max_depth=3, min_samples_leaf=5)).fit(Xb, y)
        pred = tree.predict_binned(Xb)
        for v in np.unique(pred):
            mask = pred == v
            assert y[mask].mean() == pytest.approx(v, abs=1e-9)
