"""Tests for the node-demand forecaster and the CES service pipeline."""

import numpy as np
import pytest

from repro.energy import (
    CESConfig,
    CESService,
    ForecastFeatures,
    GBDTSeriesForecaster,
    NodeDemandForecaster,
)
from repro.sched import FIFOScheduler
from repro.sim import Simulator
from repro.stats import smape
from repro.traces import HeliosTraceGenerator, SynthParams, is_gpu_job

pytestmark = pytest.mark.slow  # CES replays + forecaster fits take seconds each


def _daily_series(n=3000, seed=0, base=60.0, amp=15.0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return np.round(
        base + amp * np.sin(2 * np.pi * t / 144.0) + rng.normal(0, 1.5, n)
    )


class TestForecastFeatures:
    def test_shape(self):
        f = ForecastFeatures()
        X = f.build(np.arange(100.0))
        assert X.shape == (100, f.n_features)

    def test_lag_clipping(self):
        f = ForecastFeatures(lags=(5,), windows=())
        X = f.build(np.arange(10.0))
        assert X[0, -1] == 0.0  # clipped to index 0
        assert X[9, -1] == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ForecastFeatures(bin_seconds=0)
        with pytest.raises(ValueError):
            ForecastFeatures(lags=(0,))


class TestNodeDemandForecaster:
    def test_learns_daily_pattern(self):
        s = _daily_series()
        model = NodeDemandForecaster(horizon_bins=18).fit(s[:2500])
        idx = np.arange(2500, 3000 - 18)
        pred = model.predict_at(s, idx)
        truth = s[idx + 18]
        assert smape(truth + 1, pred + 1) < 8.0

    def test_beats_persistence(self):
        s = _daily_series(seed=3)
        model = NodeDemandForecaster(horizon_bins=36).fit(s[:2500])
        idx = np.arange(2500, 3000 - 36)
        pred = model.predict_at(s, idx)
        truth = s[idx + 36]
        persist = s[idx]
        assert smape(truth + 1, pred + 1) < smape(truth + 1, persist + 1)

    def test_nonnegative(self):
        s = np.maximum(_daily_series(base=3, amp=5), 0)
        model = NodeDemandForecaster(horizon_bins=6).fit(s[:2500])
        pred = model.predict_at(s, np.arange(2500, 2900))
        assert pred.min() >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeDemandForecaster(horizon_bins=0)
        with pytest.raises(ValueError):
            NodeDemandForecaster().fit(np.arange(50.0))
        with pytest.raises(RuntimeError):
            NodeDemandForecaster().predict_at(np.arange(2000.0), np.array([0]))


class TestGBDTSeriesForecaster:
    def test_fit_forecast_api(self):
        s = _daily_series()
        fc = GBDTSeriesForecaster().fit(s[:2500]).forecast(30)
        assert fc.shape == (30,)
        assert np.all(np.isfinite(fc))

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            GBDTSeriesForecaster().forecast(1)


@pytest.fixture(scope="module")
def earth_replay():
    gen = HeliosTraceGenerator(SynthParams(months=3, scale=0.2, seed=7))
    trace = gen.generate_cluster("Earth")
    gpu = trace.filter(is_gpu_job(trace))
    return Simulator(gen.specs["Earth"], FIFOScheduler()).run(gpu)


MONTH = 30 * 86_400


class TestCESService:
    def test_full_pipeline(self, earth_replay):
        rep = CESService().evaluate(
            earth_replay, eval_start=2 * MONTH, eval_end=3 * MONTH - 9 * 86_400,
            cluster="Earth",
        )
        s = rep.summary()
        # Table-5 shape: CES parks nodes, raises node utilization, and
        # wakes nodes only a few times a day.
        assert s["avg_drs_nodes"] > 0.5
        assert s["util_ces"] > s["util_original"]
        assert s["daily_wake_ups"] < 10.0
        # Predictive CES beats reactive DRS on wake churn and impact.
        assert s["vanilla_daily_wake_ups"] > s["daily_wake_ups"]
        assert s["vanilla_affected_jobs"] >= s["affected_jobs"]

    def test_forecast_quality(self, earth_replay):
        """§4.3.2: GBDT reaches a few-percent SMAPE on Earth's series."""
        rep = CESService().evaluate(
            earth_replay, eval_start=2 * MONTH, eval_end=3 * MONTH - 9 * 86_400,
        )
        assert rep.smape_forecast < 12.0

    def test_energy_accounting(self, earth_replay):
        rep = CESService().evaluate(
            earth_replay, eval_start=2 * MONTH, eval_end=3 * MONTH - 9 * 86_400,
        )
        assert rep.saved_kwh_eval > 0.0
        assert rep.annual_saved_kwh > rep.saved_kwh_eval

    def test_always_on_baseline(self, earth_replay):
        rep = CESService().evaluate(
            earth_replay, eval_start=2 * MONTH, eval_end=3 * MONTH - 9 * 86_400,
        )
        assert rep.always_on.avg_parked_nodes == 0.0

    def test_window_validation(self, earth_replay):
        with pytest.raises(ValueError):
            CESService().evaluate(earth_replay, eval_start=0, eval_end=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CESConfig(bin_seconds=0)
