"""Property-based tests for DRS invariants (hypothesis-driven).

Physical invariants Algorithm 2 must satisfy for *any* demand series,
forecast and parameterization:

* coverage: once demand fits the cluster, the active pool covers it
  (a wake step restores at least the demanded level);
* capacity: the active pool never exceeds the physical node count;
* the always-on baseline parks nothing and is dominated on parked
  nodes by every DRS variant;
* vanilla and CES outcomes describe the same window (aligned shapes,
  identical demand, same calendar);
* the batched fast engine agrees byte-for-byte with the stepwise
  controller on random series (the parity property, fuzzed wider than
  the seeded suite).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import (
    DRSCase,
    DRSController,
    DRSParams,
    run_always_on,
    run_drs,
    run_drs_batch,
    run_vanilla_drs,
)


@st.composite
def drs_scenario(draw):
    total = draw(st.integers(min_value=1, max_value=80))
    n = draw(st.integers(min_value=1, max_value=120))
    demand = draw(
        st.lists(
            st.integers(min_value=0, max_value=total), min_size=n, max_size=n
        )
    )
    forecast = draw(
        st.lists(
            st.integers(min_value=0, max_value=2 * total),
            min_size=n,
            max_size=n,
        )
    )
    arrivals = draw(
        st.lists(st.integers(min_value=0, max_value=9), min_size=n, max_size=n)
    )
    params = DRSParams(
        buffer_nodes=draw(st.integers(min_value=0, max_value=6)),
        recent_window_bins=draw(st.integers(min_value=1, max_value=15)),
        recent_threshold=draw(
            st.floats(min_value=-3, max_value=6, allow_nan=False)
        ),
        future_threshold=draw(
            st.floats(min_value=-3, max_value=6, allow_nan=False)
        ),
    )
    return (
        np.asarray(demand, dtype=float),
        np.asarray(forecast, dtype=float),
        np.asarray(arrivals, dtype=float),
        total,
        params,
    )


@settings(max_examples=60, deadline=None)
@given(drs_scenario())
def test_active_covers_demand_after_wake(scenario):
    demand, forecast, arrivals, total, params = scenario
    out = run_drs(demand, forecast, total, params, arrivals_per_bin=arrivals)
    # demand never exceeds the cluster here, so every wake step restores
    # at least the demanded level and parking never undercuts it
    assert np.all(out.active >= out.demand)


@settings(max_examples=60, deadline=None)
@given(drs_scenario())
def test_active_never_exceeds_total(scenario):
    demand, forecast, arrivals, total, params = scenario
    # stress the cap: double the demand so it can exceed the cluster
    out = run_drs(2 * demand, forecast, total, params, arrivals_per_bin=arrivals)
    assert out.active.size == 0 or out.active.max() <= total


@settings(max_examples=60, deadline=None)
@given(drs_scenario())
def test_always_on_dominates_parked_nodes(scenario):
    demand, forecast, arrivals, total, params = scenario
    always = run_always_on(demand, total, params)
    ces = run_drs(demand, forecast, total, params, arrivals_per_bin=arrivals)
    vanilla = run_vanilla_drs(demand, total, params, arrivals_per_bin=arrivals)
    assert always.avg_parked_nodes == 0.0
    assert always.wake_events == 0
    assert ces.avg_parked_nodes >= 0.0
    assert vanilla.avg_parked_nodes >= 0.0
    assert always.avg_parked_nodes <= ces.avg_parked_nodes
    assert always.avg_parked_nodes <= vanilla.avg_parked_nodes


@settings(max_examples=60, deadline=None)
@given(drs_scenario())
def test_vanilla_and_ces_outcomes_align(scenario):
    demand, forecast, arrivals, total, params = scenario
    ces = run_drs(demand, forecast, total, params, arrivals_per_bin=arrivals)
    vanilla = run_vanilla_drs(demand, total, params, arrivals_per_bin=arrivals)
    assert ces.active.shape == vanilla.active.shape == demand.shape
    assert ces.demand.tobytes() == vanilla.demand.tobytes()
    assert ces.total_nodes == vanilla.total_nodes == total
    assert ces.bins_per_day == vanilla.bins_per_day
    assert 0 <= ces.affected_jobs <= arrivals.sum()


@settings(max_examples=60, deadline=None)
@given(drs_scenario())
def test_batch_engine_matches_stepwise_controller(scenario):
    demand, forecast, arrivals, total, params = scenario
    controller = DRSController(total, params)
    for t in range(demand.size):
        controller.step(demand[t], forecast[t], arrivals[t])
    oracle = controller.outcome()
    (fast,) = run_drs_batch(
        [DRSCase(demand, forecast, total, params, arrivals)]
    )
    assert fast.active.tobytes() == oracle.active.tobytes()
    assert fast.demand.tobytes() == oracle.demand.tobytes()
    assert fast.wake_events == oracle.wake_events
    assert fast.nodes_woken == oracle.nodes_woken
    assert fast.affected_jobs == oracle.affected_jobs
    assert fast.bins_per_day == oracle.bins_per_day
