"""Telemetry edge cases: empty stats, mixed-schema report rollups."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve import LatencyStats, aggregate_reports
from repro.serve.telemetry import LatencyRecorder


def _report(cluster="Venus", events=10, wall=1.0, decisions=3, samples=2,
            refits=None, **extra):
    ns = SimpleNamespace(
        cluster=cluster,
        refits=refits or {},
        events=events,
        wall_seconds=wall,
        qssf_decisions=decisions,
        node_samples=samples,
    )
    for key, value in extra.items():
        setattr(ns, key, value)
    return ns


class TestLatencyStats:
    def test_empty_samples_all_zero(self):
        stats = LatencyStats.from_seconds([])
        assert stats == LatencyStats(count=0, p50_ms=0.0, p99_ms=0.0, mean_ms=0.0)
        assert stats.as_dict() == {
            "count": 0, "p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0,
        }

    def test_empty_ndarray(self):
        stats = LatencyStats.from_seconds(np.array([]))
        assert stats.count == 0 and stats.mean_ms == 0.0

    def test_single_sample(self):
        stats = LatencyStats.from_seconds([0.002])
        assert stats.count == 1
        assert stats.p50_ms == pytest.approx(2.0)
        assert stats.p99_ms == pytest.approx(2.0)
        assert stats.mean_ms == pytest.approx(2.0)

    def test_recorder_round_trip(self):
        rec = LatencyRecorder()
        assert rec.stats().count == 0
        for s in (0.001, 0.003, 0.002):
            rec.record(s)
        stats = rec.stats()
        assert stats.count == 3
        # Quantiles come out of the log-binned histogram: exact to its
        # ~±4% bin resolution, not to the float.
        assert stats.p50_ms == pytest.approx(2.0, rel=0.08)
        assert stats.p99_ms <= 3.0 * 1.08
        assert stats.mean_ms == pytest.approx(2.0)


class TestAggregateFaultFields:
    def test_empty_reports(self):
        agg = aggregate_reports([])
        assert agg["shards"] == 0
        assert agg["events"] == 0
        assert agg["events_per_s"] == 0.0
        assert "retries" not in agg and "degraded" not in agg

    def test_pre_chaos_reports_unchanged_schema(self):
        """Reports without fault-tolerance fields (older payloads, test
        doubles) aggregate exactly as before — no new keys appear."""
        agg = aggregate_reports([_report(), _report(cluster="Earth")])
        assert set(agg) == {
            "shards", "events", "wall_seconds", "events_per_s",
            "qssf_decisions", "ces_steps", "refits",
        }

    def test_zero_valued_fault_fields_stay_absent(self):
        agg = aggregate_reports(
            [_report(retries=0, degraded={}, node_health={})]
        )
        assert "retries" not in agg
        assert "degraded" not in agg
        assert "node_health" not in agg

    def test_mixed_schema_reports_merge(self):
        """A degraded shard and a pre-chaos shard roll up together."""
        degraded = _report(
            retries=2,
            degraded={"qssf_rung": 2, "qssf_decisions": 7},
            node_health={"node_down": 3, "node_up": 2, "max_down": 2},
        )
        plain = _report(cluster="Earth")
        agg = aggregate_reports([degraded, plain])
        assert agg["retries"] == 2
        assert agg["degraded"] == {"qssf_rung": 2, "qssf_decisions": 7}
        assert agg["node_health"] == {"node_down": 3, "node_up": 2, "max_down": 2}

    def test_rungs_take_max_counters_sum(self):
        a = _report(
            retries=1,
            degraded={"qssf_rung": 1, "ces_rung": 1, "qssf_decisions": 5,
                      "ces_steps": 4},
            node_health={"node_down": 1, "node_up": 1, "max_down": 1},
        )
        b = _report(
            cluster="Earth",
            retries=2,
            degraded={"qssf_rung": 3, "qssf_decisions": 2},
            node_health={"node_down": 2, "node_up": 0, "max_down": 2},
        )
        agg = aggregate_reports([a, b])
        assert agg["retries"] == 3
        assert agg["degraded"] == {
            "qssf_rung": 3,  # worst rung, not the sum
            "ces_rung": 1,
            "qssf_decisions": 7,
            "ces_steps": 4,
        }
        assert agg["node_health"] == {"node_down": 3, "node_up": 1, "max_down": 2}

    def test_wall_seconds_override(self):
        agg = aggregate_reports([_report(wall=2.0), _report(wall=3.0)],
                                wall_seconds=4.0)
        assert agg["wall_seconds"] == 4.0
        assert agg["events_per_s"] == pytest.approx(20 / 4.0)
