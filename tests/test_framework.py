"""Tests for the prediction-based framework (§4.1)."""

import numpy as np
import pytest

from repro.framework import (
    CESNodeService,
    ModelUpdateEngine,
    PredictionService,
    QSSFService,
    ResourceOrchestrator,
    UpdatePolicy,
)
from repro.traces import HeliosTraceGenerator, SynthParams, is_gpu_job


class CountingService(PredictionService):
    """Trivial service for engine/orchestrator mechanics."""

    service_name = "counter"

    def __init__(self):
        self.fit_calls = 0
        self.observed = []

    def fit(self, history):
        self.fit_calls += 1
        self.last_history = history
        return self

    def predict(self, request):
        return len(self.observed)

    def act(self, state):
        return f"act({state})"

    def observe(self, event):
        self.observed.append(event)


class TestModelUpdateEngine:
    def test_register_and_refit_on_time(self):
        eng = ModelUpdateEngine(UpdatePolicy(interval_seconds=100))
        svc = CountingService()
        eng.register(svc, history_builder=list)
        eng.observe("counter", {"x": 1}, now=10.0)
        assert svc.fit_calls == 0
        eng.observe("counter", {"x": 2}, now=150.0)
        assert svc.fit_calls == 1
        assert svc.last_history == [{"x": 1}, {"x": 2}]

    def test_refit_on_buffer_size(self):
        eng = ModelUpdateEngine(UpdatePolicy(interval_seconds=1e9, max_buffered=3))
        svc = CountingService()
        eng.register(svc, list)
        for i in range(3):
            eng.observe("counter", i, now=float(i))
        assert svc.fit_calls == 1

    def test_duplicate_registration(self):
        eng = ModelUpdateEngine()
        eng.register(CountingService(), list)
        with pytest.raises(ValueError):
            eng.register(CountingService(), list)

    def test_unknown_service(self):
        with pytest.raises(KeyError):
            ModelUpdateEngine().refit("nope", 0.0)

    def test_refit_empty_buffer_noop(self):
        eng = ModelUpdateEngine()
        svc = CountingService()
        eng.register(svc, list)
        eng.refit("counter", 5.0)
        assert svc.fit_calls == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            UpdatePolicy(interval_seconds=0)
        with pytest.raises(ValueError):
            UpdatePolicy(max_buffered=0)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_refit_all(self, jobs):
        eng = ModelUpdateEngine(UpdatePolicy(interval_seconds=1e9))
        services = []
        for i in range(3):
            svc = CountingService()
            svc.service_name = f"svc{i}"
            services.append(svc)
            eng.register(svc, list)
        eng.observe("svc0", "a", now=1.0)
        eng.observe("svc2", "b", now=1.0)
        refitted = eng.refit_all(now=2.0, jobs=jobs)
        assert refitted == ["svc0", "svc2"]  # svc1 had nothing buffered
        assert [s.fit_calls for s in services] == [1, 0, 1]
        assert eng.refit_count("svc0") == 1

    def test_refit_all_empty_engine(self):
        assert ModelUpdateEngine().refit_all(now=0.0) == []


class TestOrchestrator:
    def test_install_and_decide(self):
        orch = ResourceOrchestrator()
        orch.install(CountingService())
        assert orch.installed == ["counter"]
        assert orch.decide("counter", "queue") == "act(queue)"

    def test_duplicate_install(self):
        orch = ResourceOrchestrator()
        orch.install(CountingService())
        with pytest.raises(ValueError):
            orch.install(CountingService())

    def test_uninstall(self):
        orch = ResourceOrchestrator()
        orch.install(CountingService())
        orch.uninstall("counter")
        assert orch.installed == []
        with pytest.raises(KeyError):
            orch.uninstall("counter")

    def test_unknown_service(self):
        with pytest.raises(KeyError):
            ResourceOrchestrator().decide("ghost", None)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_decide_many_preserves_order(self, jobs):
        orch = ResourceOrchestrator()
        orch.install(CountingService())
        states = [f"q{i}" for i in range(5)]
        assert orch.decide_many("counter", states, jobs=jobs) == [
            f"act(q{i})" for i in range(5)
        ]

    def test_decide_many_empty(self):
        orch = ResourceOrchestrator()
        orch.install(CountingService())
        assert orch.decide_many("counter", []) == []


@pytest.fixture(scope="module")
def small_history():
    gen = HeliosTraceGenerator(SynthParams(months=1, scale=0.05, seed=13))
    trace = gen.generate_cluster("Venus")
    return trace.filter(is_gpu_job(trace))


class TestQSSFService:
    def test_fit_predict_act(self, small_history):
        svc = QSSFService(lam=1.0).fit(small_history)
        head = small_history.head(20)
        pred = svc.predict(head)
        assert pred.shape == (20,)
        ordered = svc.act(head)
        got = svc.predict(ordered)
        assert np.all(np.diff(got) >= -1e-9)  # sorted ascending

    def test_unfitted(self, small_history):
        with pytest.raises(RuntimeError):
            QSSFService().predict(small_history.head(1))

    def test_observe(self, small_history):
        svc = QSSFService(lam=1.0).fit(small_history)
        svc.observe({"user": "ux", "name": "j_1", "gpu_num": 2, "duration": 123.0})
        assert svc.scheduler.rolling.estimate("ux", "j_2", 2) == pytest.approx(123.0)


class TestCESNodeService:
    def _series(self, n=2500):
        t = np.arange(n)
        return np.round(40 + 10 * np.sin(2 * np.pi * t / 144.0))

    def test_fit_predict_act(self):
        svc = CESNodeService().fit(self._series())
        demand = self._series(600)
        pred = svc.predict(demand)
        assert pred.shape == demand.shape
        outcome = svc.act((demand, 64))
        assert outcome.total_nodes == 64
        assert np.all(outcome.active >= outcome.demand)

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            CESNodeService().predict(np.zeros(10))
