"""Tests for the prediction-based framework (§4.1)."""

import threading
import time

import numpy as np
import pytest

from repro.framework import (
    CESNodeService,
    ModelUpdateEngine,
    PredictionService,
    QSSFService,
    ResourceOrchestrator,
    UpdatePolicy,
)
from repro.traces import HeliosTraceGenerator, SynthParams, is_gpu_job


class CountingService(PredictionService):
    """Trivial service for engine/orchestrator mechanics."""

    service_name = "counter"

    def __init__(self):
        self.fit_calls = 0
        self.observed = []

    def fit(self, history):
        self.fit_calls += 1
        self.last_history = history
        return self

    def predict(self, request):
        return len(self.observed)

    def act(self, state):
        return f"act({state})"

    def observe(self, event):
        self.observed.append(event)


class IncrementalService(CountingService):
    """Counting service that also supports the incremental refit path."""

    service_name = "incr"
    supports_incremental = True

    def __init__(self):
        super().__init__()
        self.update_calls = []

    def apply_update(self, new_history):
        self.update_calls.append(new_history)
        return self


class TestModelUpdateEngine:
    def test_register_and_refit_on_time(self):
        eng = ModelUpdateEngine(UpdatePolicy(interval_seconds=100))
        svc = CountingService()
        eng.register(svc, history_builder=list)
        eng.observe("counter", {"x": 1}, now=10.0)
        assert svc.fit_calls == 0
        eng.observe("counter", {"x": 2}, now=150.0)
        assert svc.fit_calls == 1
        assert svc.last_history == [{"x": 1}, {"x": 2}]

    def test_refit_on_buffer_size(self):
        eng = ModelUpdateEngine(UpdatePolicy(interval_seconds=1e9, max_buffered=3))
        svc = CountingService()
        eng.register(svc, list)
        for i in range(3):
            eng.observe("counter", i, now=float(i))
        assert svc.fit_calls == 1

    def test_duplicate_registration(self):
        eng = ModelUpdateEngine()
        eng.register(CountingService(), list)
        with pytest.raises(ValueError):
            eng.register(CountingService(), list)

    def test_unknown_service(self):
        with pytest.raises(KeyError):
            ModelUpdateEngine().refit("nope", 0.0)

    def test_refit_empty_buffer_noop(self):
        eng = ModelUpdateEngine()
        svc = CountingService()
        eng.register(svc, list)
        eng.refit("counter", 5.0)
        assert svc.fit_calls == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            UpdatePolicy(interval_seconds=0)
        with pytest.raises(ValueError):
            UpdatePolicy(max_buffered=0)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_refit_all(self, jobs):
        eng = ModelUpdateEngine(UpdatePolicy(interval_seconds=1e9))
        services = []
        for i in range(3):
            svc = CountingService()
            svc.service_name = f"svc{i}"
            services.append(svc)
            eng.register(svc, list)
        eng.observe("svc0", "a", now=1.0)
        eng.observe("svc2", "b", now=1.0)
        refitted = eng.refit_all(now=2.0, jobs=jobs)
        assert refitted == ["svc0", "svc2"]  # svc1 had nothing buffered
        assert [s.fit_calls for s in services] == [1, 0, 1]
        assert eng.refit_count("svc0") == 1

    def test_refit_all_empty_engine(self):
        assert ModelUpdateEngine().refit_all(now=0.0) == []


class TestIncrementalRefit:
    def test_auto_mode_prefers_incremental_once_fitted(self):
        eng = ModelUpdateEngine(UpdatePolicy(interval_seconds=1e9))
        svc = IncrementalService()
        eng.register(svc, list)
        eng.observe("incr", "a", now=1.0)
        # first refit: no model yet -> scratch, on the full history
        assert eng.refit("incr", now=2.0) == "scratch"
        assert svc.fit_calls == 1 and svc.update_calls == []
        eng.observe("incr", "b", now=3.0)
        eng.observe("incr", "c", now=3.5)
        # second refit: incremental, sees only the new events
        assert eng.refit("incr", now=4.0) == "incremental"
        assert svc.fit_calls == 1
        assert svc.update_calls == [["b", "c"]]
        assert eng.refit_count("incr") == 2
        assert eng.incremental_refit_count("incr") == 1

    def test_update_builder_shapes_the_delta(self):
        """The incremental path uses update_builder (new events only),
        never the scratch builder (which may fold in base history)."""
        eng = ModelUpdateEngine()
        svc = IncrementalService()
        base = ["h1", "h2"]
        eng.register(
            svc,
            history_builder=lambda rows: base + rows,
            update_builder=lambda rows: rows,
            prefitted=True,
        )
        eng.observe("incr", "a", now=1.0)
        assert eng.refit("incr", now=2.0) == "incremental"
        assert svc.update_calls == [["a"]]  # delta only, no base history
        eng.observe("incr", "b", now=3.0)
        assert eng.refit("incr", now=4.0, mode="scratch") == "scratch"
        assert svc.last_history == ["h1", "h2", "a", "b"]  # scratch: full

    def test_prefitted_service_goes_incremental_immediately(self):
        eng = ModelUpdateEngine()
        svc = IncrementalService()
        eng.register(svc, list, prefitted=True)
        eng.observe("incr", "a", now=1.0)
        assert eng.refit("incr", now=2.0) == "incremental"
        assert svc.fit_calls == 0 and svc.update_calls == [["a"]]

    def test_scratch_mode_forces_full_refit(self):
        eng = ModelUpdateEngine(mode="scratch")
        svc = IncrementalService()
        eng.register(svc, list, prefitted=True)
        eng.observe("incr", "a", now=1.0)
        assert eng.refit("incr", now=2.0) == "scratch"
        eng.observe("incr", "b", now=3.0)
        # scratch refits always see the *entire* history (the oracle)
        assert eng.refit("incr", now=4.0) == "scratch"
        assert svc.last_history == ["a", "b"]
        assert svc.update_calls == []

    def test_per_call_mode_override(self):
        eng = ModelUpdateEngine(mode="auto")
        svc = IncrementalService()
        eng.register(svc, list, prefitted=True)
        eng.observe("incr", "a", now=1.0)
        assert eng.refit("incr", now=2.0, mode="scratch") == "scratch"

    def test_unsupported_service_falls_back_to_scratch(self):
        eng = ModelUpdateEngine(mode="incremental")
        svc = CountingService()
        eng.register(svc, list, prefitted=True)
        eng.observe("counter", "a", now=1.0)
        assert eng.refit("counter", now=2.0) == "scratch"
        assert svc.fit_calls == 1

    def test_default_apply_update_raises(self):
        with pytest.raises(NotImplementedError):
            CountingService().apply_update(["x"])

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            ModelUpdateEngine(mode="bogus")
        eng = ModelUpdateEngine()
        eng.register(CountingService(), list)
        with pytest.raises(ValueError, match="mode"):
            eng.refit("counter", 0.0, mode="bogus")

    def test_refit_clears_pending_only(self):
        eng = ModelUpdateEngine(UpdatePolicy(interval_seconds=1e9, max_buffered=2))
        svc = CountingService()
        eng.register(svc, list)
        eng.observe("counter", 1, now=0.0)
        eng.observe("counter", 2, now=0.0)  # buffer trigger
        assert svc.fit_calls == 1 and eng.pending_count("counter") == 0
        eng.observe("counter", 3, now=0.0)
        assert svc.fit_calls == 1  # pending=1 < max_buffered: no re-trigger
        eng.refit("counter", now=0.0)
        assert svc.last_history == [1, 2, 3]  # history accumulates

    def test_reset_clock(self):
        eng = ModelUpdateEngine(UpdatePolicy(interval_seconds=100))
        svc = CountingService()
        eng.register(svc, list)
        eng.reset_clock(1_000_000.0)
        eng.observe("counter", "a", now=1_000_050.0)
        assert svc.fit_calls == 0  # not overdue relative to the anchor
        eng.observe("counter", "b", now=1_000_150.0)
        assert svc.fit_calls == 1


class TestOrchestrator:
    def test_install_and_decide(self):
        orch = ResourceOrchestrator()
        orch.install(CountingService())
        assert orch.installed == ["counter"]
        assert orch.decide("counter", "queue") == "act(queue)"

    def test_duplicate_install(self):
        orch = ResourceOrchestrator()
        orch.install(CountingService())
        with pytest.raises(ValueError):
            orch.install(CountingService())

    def test_uninstall(self):
        orch = ResourceOrchestrator()
        orch.install(CountingService())
        orch.uninstall("counter")
        assert orch.installed == []
        with pytest.raises(KeyError):
            orch.uninstall("counter")

    def test_unknown_service(self):
        with pytest.raises(KeyError):
            ResourceOrchestrator().decide("ghost", None)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_decide_many_preserves_order(self, jobs):
        orch = ResourceOrchestrator()
        orch.install(CountingService())
        states = [f"q{i}" for i in range(5)]
        assert orch.decide_many("counter", states, jobs=jobs) == [
            f"act(q{i})" for i in range(5)
        ]

    def test_decide_many_empty(self):
        orch = ResourceOrchestrator()
        orch.install(CountingService())
        assert orch.decide_many("counter", []) == []


class TestReplace:
    def test_replace_installs_when_absent(self):
        orch = ResourceOrchestrator()
        svc = CountingService()
        assert orch.replace(svc) is None
        assert orch.installed == ["counter"]

    def test_replace_swaps_and_returns_old(self):
        orch = ResourceOrchestrator()
        old, new = CountingService(), CountingService()
        orch.install(old)
        assert orch.replace(new) is old
        assert orch.service("counter") is new
        assert orch.installed == ["counter"]  # idempotent: still one entry

    def test_replace_is_idempotent(self):
        orch = ResourceOrchestrator()
        svc = CountingService()
        orch.replace(svc)
        assert orch.replace(svc) is svc
        assert orch.installed == ["counter"]

    def test_hot_swap_does_not_race_inflight_decide_many(self):
        """A batch resolved before the swap finishes on the old service;
        batches resolved after use the new one — never a KeyError, never
        a mixed batch."""

        class SlowService(CountingService):
            def __init__(self, tag):
                super().__init__()
                self.tag = tag

            def act(self, state):
                time.sleep(0.002)
                return self.tag

        orch = ResourceOrchestrator()
        orch.install(SlowService("old"))
        results = []

        def dispatch():
            results.append(orch.decide_many("counter", list(range(8)), jobs=2))

        t = threading.Thread(target=dispatch)
        t.start()
        time.sleep(0.004)  # land mid-batch
        orch.replace(SlowService("new"))
        t.join()
        dispatch()
        assert len(set(results[0])) == 1  # in-flight batch: one service only
        assert results[1] == ["new"] * 8  # post-swap batch: the new model


@pytest.fixture(scope="module")
def small_history():
    gen = HeliosTraceGenerator(SynthParams(months=1, scale=0.05, seed=13))
    trace = gen.generate_cluster("Venus")
    return trace.filter(is_gpu_job(trace))


class TestQSSFService:
    def test_fit_predict_act(self, small_history):
        svc = QSSFService(lam=1.0).fit(small_history)
        head = small_history.head(20)
        pred = svc.predict(head)
        assert pred.shape == (20,)
        ordered = svc.act(head)
        got = svc.predict(ordered)
        assert np.all(np.diff(got) >= -1e-9)  # sorted ascending

    def test_unfitted(self, small_history):
        with pytest.raises(RuntimeError):
            QSSFService().predict(small_history.head(1))

    def test_observe(self, small_history):
        svc = QSSFService(lam=1.0).fit(small_history)
        svc.observe({"user": "ux", "name": "j_1", "gpu_num": 2, "duration": 123.0})
        assert svc.scheduler.rolling.estimate("ux", "j_2", 2) == pytest.approx(123.0)


class TestCESNodeService:
    def _series(self, n=2500):
        t = np.arange(n)
        return np.round(40 + 10 * np.sin(2 * np.pi * t / 144.0))

    def test_fit_predict_act(self):
        svc = CESNodeService().fit(self._series())
        demand = self._series(600)
        pred = svc.predict(demand)
        assert pred.shape == demand.shape
        outcome = svc.act((demand, 64))
        assert outcome.total_nodes == 64
        assert np.all(outcome.active >= outcome.demand)

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            CESNodeService().predict(np.zeros(10))

    def test_observe_advances_forecaster_between_refits(self):
        svc = CESNodeService(update_every=8).fit(self._series())
        before = svc.forecaster._train_end
        for v in self._series(300)[:7]:
            svc.observe(v)
        assert svc.updates_applied == 0  # still buffering
        svc.observe(41.0)  # 8th sample triggers the incremental extend
        assert svc.updates_applied == 1
        assert svc.forecaster._train_end > before
        assert len(svc.history) == 2500 + 8

    def test_apply_update_flushes_pending_without_double_count(self):
        svc = CESNodeService(update_every=1_000).fit(self._series())
        samples = [40.0, 41.0, 42.0]
        for v in samples:
            svc.observe(v)
        # the engine hands back the same samples it routed through
        # observe(); they must not be ingested twice
        svc.apply_update(np.asarray(samples))
        assert len(svc.history) == 2500 + 3
        assert svc.updates_applied == 1

    def test_apply_update_never_ingests_argument(self):
        """Regression: a refit landing right after an update_every flush
        (empty pending) must not re-ingest the engine-built delta —
        that silently corrupted the demand series."""
        svc = CESNodeService(update_every=4).fit(self._series())
        samples = [40.0, 41.0, 42.0, 43.0]
        for v in samples:
            svc.observe(v)  # 4th sample auto-flushes: pending now empty
        assert svc.updates_applied == 1
        svc.apply_update(np.asarray(samples))  # engine refit, same delta
        assert len(svc.history) == 2500 + 4  # no duplication
        assert svc.updates_applied == 1  # nothing pending: no-op

    def test_apply_update_requires_fit(self):
        with pytest.raises(RuntimeError):
            CESNodeService().apply_update(np.zeros(3))

    def test_update_every_validation(self):
        with pytest.raises(ValueError):
            CESNodeService(update_every=0)
