"""Tests for Levenshtein distance and job-name bucketing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import NameBucketizer, levenshtein, levenshtein_ratio, similar_names


def _reference_levenshtein(a: str, b: str) -> int:
    """Textbook O(nm) DP for cross-checking."""
    dp = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        prev = dp[0]
        dp[0] = i
        for j, cb in enumerate(b, 1):
            cur = dp[j]
            dp[j] = min(dp[j] + 1, dp[j - 1] + 1, prev + (ca != cb))
            prev = cur
    return dp[-1]


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expect",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xyz", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("gumbo", "gambol", 2),
            ("train_v1", "train_v2", 1),
            ("resnet50_train", "resnet101_train", 2),
        ],
    )
    def test_known_cases(self, a, b, expect):
        assert levenshtein(a, b) == expect

    def test_symmetry(self):
        assert levenshtein("abcdef", "azced") == levenshtein("azced", "abcdef")

    @settings(max_examples=150, deadline=None)
    @given(st.text(max_size=12), st.text(max_size=12))
    def test_matches_reference(self, a, b):
        assert levenshtein(a, b) == _reference_levenshtein(a, b)

    @settings(max_examples=80, deadline=None)
    @given(st.text(max_size=10), st.text(max_size=10), st.text(max_size=10))
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestRatio:
    def test_identical(self):
        assert levenshtein_ratio("x", "x") == 1.0
        assert levenshtein_ratio("", "") == 1.0

    def test_disjoint(self):
        assert levenshtein_ratio("aaa", "bbb") == 0.0

    def test_range(self):
        assert 0.0 <= levenshtein_ratio("hello", "help") <= 1.0


class TestSimilarNames:
    def test_finds_variants(self):
        cands = ["train_v1", "train_v2", "eval_run", "totally_different_name"]
        hits = similar_names("train_v3", cands, threshold=0.7)
        assert "train_v1" in hits and "train_v2" in hits
        assert "totally_different_name" not in hits

    def test_empty_candidates(self):
        assert similar_names("x", [], 0.5) == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            similar_names("x", ["y"], threshold=1.5)

    def test_length_prefilter_consistent(self):
        """The length-based pruning must not drop true positives."""
        cands = ["ab", "abcdefgh", "abcd"]
        naive = [c for c in cands if levenshtein_ratio("abcde", c) >= 0.6]
        assert similar_names("abcde", cands, 0.6) == naive


class TestNameBucketizer:
    def test_canonicalize(self):
        assert NameBucketizer.canonicalize("Train_12a") == "train_#a"
        assert NameBucketizer.canonicalize("v1_2_3") == "v#_#_#"
        assert NameBucketizer.canonicalize("no-digits") == "no-digits"

    def test_numbered_variants_share_bucket(self):
        b = NameBucketizer()
        ids = b.fit_transform(["exp_1", "exp_2", "exp_37"])
        assert len(set(ids.tolist())) == 1

    def test_distinct_names_get_distinct_buckets(self):
        b = NameBucketizer(threshold=0.8)
        ids = b.fit_transform(["resnet_training", "bert_pretrain_wiki"])
        assert ids[0] != ids[1]

    def test_unseen_names_assigned_online(self):
        b = NameBucketizer()
        b.fit(["alpha_run"])
        out = b.transform(["alpha_run", "zzz_completely_new"])
        assert out[0] == 0
        assert out[1] == 1
        assert b.n_buckets == 2

    def test_max_buckets_overflow(self):
        b = NameBucketizer(threshold=1.0, max_buckets=2)
        ids = b.fit_transform(["aaaa", "bbbb", "cccc", "dddd"])
        assert ids.max() <= 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            NameBucketizer(threshold=0.0)

    def test_deterministic(self):
        names = ["job_%d" % i for i in range(20)] + ["eval_x", "eval_y"]
        a = NameBucketizer().fit_transform(names)
        b = NameBucketizer().fit_transform(names)
        np.testing.assert_array_equal(a, b)
