"""Shard fan-out tests: build_shard scenario wiring + fork determinism."""

import numpy as np
import pytest

from repro.serve import ServeConfig, ShardTask, build_shard, serve_clusters

#: small windows keep the shared-scenario slices cheap; 14 days of
#: 10-minute bins still clears the default forecaster's 1008-bin warmup.
_TASK = dict(history_days=14, stream_days=1.0, max_jobs=250)


@pytest.fixture(scope="module")
def frozen_config():
    return ServeConfig(lam=1.0, online_updates=False)


@pytest.fixture(scope="module")
def light_config():
    """Hourly bins + a small CES model: replay streams run past the
    window until the last simulated finish, so per-bin cost matters."""
    from repro.energy.forecaster import ForecastFeatures
    from repro.ml.gbdt import GBDTParams

    return ServeConfig(
        lam=1.0,
        online_updates=False,
        bin_seconds=3_600,
        horizon_bins=6,
        ces_features=ForecastFeatures(
            bin_seconds=3_600, lags=(1, 2, 3, 6, 24), windows=(6, 24)
        ),
        ces_gbdt=GBDTParams(n_estimators=40, max_depth=4, min_samples_leaf=10),
    )


class TestBuildShard:
    def test_scenario_wiring(self, frozen_config):
        from repro.experiments.common import EVAL_MONTH, MONTH_SECONDS, cluster_spec

        server, stream = build_shard(
            ShardTask("Venus", config=frozen_config, **_TASK)
        )
        assert stream.cluster == "Venus"
        eval_start = EVAL_MONTH * MONTH_SECONDS
        assert stream.times[0] >= eval_start - 600
        assert len(stream.jobs) <= 250
        # demand series capacity-normalized to the physical node count
        total = cluster_spec("Venus").num_nodes
        assert stream.demand is not None
        assert stream.demand.max() <= total
        assert {"qssf", "ces"} <= set(server.orchestrator.installed)

    def test_task_validation(self, frozen_config):
        with pytest.raises(ValueError):
            ShardTask("Venus", config=frozen_config, history_days=0)
        with pytest.raises(ValueError):
            ShardTask("Venus", config=frozen_config, stream_days=0.0)
        with pytest.raises(ValueError, match="source"):
            ShardTask("Venus", config=frozen_config, source="oracle")
        with pytest.raises(ValueError, match="max_jobs"):
            ShardTask("Venus", config=frozen_config, max_jobs=0)
        with pytest.raises(ValueError, match="max_jobs"):
            ShardTask("Venus", config=frozen_config, max_jobs=-5)
        with pytest.raises(ValueError, match="speedup"):
            ShardTask("Venus", config=frozen_config, speedup=0.0)
        with pytest.raises(ValueError, match="speedup"):
            ShardTask("Venus", config=frozen_config, speedup=-1.0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            ShardTask("Venus", config=frozen_config, checkpoint_every=0)


class TestReplaySource:
    def test_stream_finishes_at_simulated_end_times(self, light_config):
        """source="replay": finish events fall at the replayed end_time,
        not the as-if-unqueued submit + duration."""
        from repro.experiments.common import (
            EVAL_MONTH,
            MONTH_SECONDS,
            cluster_gpu_trace,
            cluster_spec,
        )
        from repro.sched import FIFOScheduler
        from repro.serve.stream import FINISH
        from repro.sim import Simulator
        from repro.traces import SECONDS_PER_DAY, slice_period

        server, stream = build_shard(
            ShardTask("Venus", config=light_config, source="replay", **_TASK)
        )
        eval_start = EVAL_MONTH * MONTH_SECONDS
        # independent replay of the same shard window -> expected ends
        gpu = cluster_gpu_trace("Venus")
        window = slice_period(
            gpu,
            eval_start - 14 * SECONDS_PER_DAY,
            eval_start + 1.0 * SECONDS_PER_DAY,
        )
        replay = Simulator(cluster_spec("Venus"), FIFOScheduler()).run(window)
        rt = replay.replayed_trace()
        ends = {
            str(j): float(e)
            for j, e in zip(rt["job_id"], rt["end_time"])
        }
        fin = stream.kinds == FINISH
        streamed = stream.jobs
        for t, ref in zip(stream.times[fin], stream.refs[fin]):
            assert t == ends[str(streamed["job_id"][int(ref)])]
        # replay-derived demand is physical (never exceeds node count)
        assert stream.demand is not None
        assert stream.demand.max() <= cluster_spec("Venus").num_nodes

    def test_replay_shard_serves_end_to_end(self, light_config):
        (report,) = serve_clusters(
            ("Venus",), config=light_config, jobs=1, source="replay", **_TASK
        )
        assert report.events > 0
        assert report.node_samples > 0
        assert report.qssf_decisions > 0

    def test_replay_shard_deterministic(self, light_config):
        a, b = (
            serve_clusters(
                ("Venus",), config=light_config, jobs=1, source="replay", **_TASK
            )[0]
            for _ in range(2)
        )
        assert a.qssf_digest == b.qssf_digest
        assert a.ces_digest == b.ces_digest


class TestServeClusters:
    def test_fork_pool_matches_serial(self, frozen_config):
        """Shard decisions are byte-identical whether shards run
        in-process or fanned out across forked workers."""
        clusters = ("Venus", "Saturn")
        serial = serve_clusters(clusters, config=frozen_config, jobs=1, **_TASK)
        forked = serve_clusters(clusters, config=frozen_config, jobs=2, **_TASK)
        assert [r.cluster for r in serial] == list(clusters)
        for a, b in zip(serial, forked):
            assert a.cluster == b.cluster
            assert a.qssf_digest == b.qssf_digest
            assert a.ces_digest == b.ces_digest
            assert a.events == b.events
        assert all(r.events > 0 for r in serial)

    def test_supervised_fault_free_matches_plain(self, frozen_config):
        """Supervision must be a pure wrapper: a fault-free supervised
        run's parity surface equals the bare fan-out's."""
        plain = serve_clusters(("Venus",), config=frozen_config, jobs=1, **_TASK)
        supervised = serve_clusters(
            ("Venus",), config=frozen_config, jobs=1, supervised=True, **_TASK
        )
        assert supervised[0].parity_bytes() == plain[0].parity_bytes()
        assert supervised[0].retries == 0
        assert "retries" not in supervised[0].as_dict()

    def test_reports_carry_telemetry(self, frozen_config):
        (report,) = serve_clusters(
            ("Venus",), config=frozen_config, jobs=1, **_TASK
        )
        d = report.as_dict()
        assert d["events"] == d["submits"] + d["finishes"] + d["node_samples"]
        assert d["events_per_s"] > 0
        assert d["qssf_latency"]["count"] == report.qssf_batches
        assert np.isfinite(d["ces_latency"]["p99_ms"])
