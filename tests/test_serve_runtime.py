"""Shard fan-out tests: build_shard scenario wiring + fork determinism."""

import numpy as np
import pytest

from repro.serve import ServeConfig, ShardTask, build_shard, serve_clusters

#: small windows keep the shared-scenario slices cheap; 14 days of
#: 10-minute bins still clears the default forecaster's 1008-bin warmup.
_TASK = dict(history_days=14, stream_days=1.0, max_jobs=250)


@pytest.fixture(scope="module")
def frozen_config():
    return ServeConfig(lam=1.0, online_updates=False)


class TestBuildShard:
    def test_scenario_wiring(self, frozen_config):
        from repro.experiments.common import EVAL_MONTH, MONTH_SECONDS, cluster_spec

        server, stream = build_shard(
            ShardTask("Venus", config=frozen_config, **_TASK)
        )
        assert stream.cluster == "Venus"
        eval_start = EVAL_MONTH * MONTH_SECONDS
        assert stream.times[0] >= eval_start - 600
        assert len(stream.jobs) <= 250
        # demand series capacity-normalized to the physical node count
        total = cluster_spec("Venus").num_nodes
        assert stream.demand is not None
        assert stream.demand.max() <= total
        assert {"qssf", "ces"} <= set(server.orchestrator.installed)

    def test_task_validation(self, frozen_config):
        with pytest.raises(ValueError):
            ShardTask("Venus", config=frozen_config, history_days=0)
        with pytest.raises(ValueError):
            ShardTask("Venus", config=frozen_config, stream_days=0.0)


class TestServeClusters:
    def test_fork_pool_matches_serial(self, frozen_config):
        """Shard decisions are byte-identical whether shards run
        in-process or fanned out across forked workers."""
        clusters = ("Venus", "Saturn")
        serial = serve_clusters(clusters, config=frozen_config, jobs=1, **_TASK)
        forked = serve_clusters(clusters, config=frozen_config, jobs=2, **_TASK)
        assert [r.cluster for r in serial] == list(clusters)
        for a, b in zip(serial, forked):
            assert a.cluster == b.cluster
            assert a.qssf_digest == b.qssf_digest
            assert a.ces_digest == b.ces_digest
            assert a.events == b.events
        assert all(r.events > 0 for r in serial)

    def test_reports_carry_telemetry(self, frozen_config):
        (report,) = serve_clusters(
            ("Venus",), config=frozen_config, jobs=1, **_TASK
        )
        d = report.as_dict()
        assert d["events"] == d["submits"] + d["finishes"] + d["node_samples"]
        assert d["events_per_s"] > 0
        assert d["qssf_latency"]["count"] == report.qssf_batches
        assert np.isfinite(d["ces_latency"]["p99_ms"])
