"""Tests for the content-addressed artifact cache and payload codec."""

import numpy as np
import pytest

from repro.experiments.cache import (
    ArtifactCache,
    code_fingerprint,
    dumps_payload,
    loads_payload,
    memo,
)
from repro.frame import Table, table_from_bytes, table_to_bytes


def sample_table():
    return Table(
        {
            "job_id": np.array(["a", "bb", "ccc"]),
            "gpus": np.array([1, 8, 256], dtype=np.int64),
            "duration": np.array([0.5, 1e9, -3.25]),
            "ok": np.array([True, False, True]),
        }
    )


def assert_tables_equal(a: Table, b: Table):
    assert a.columns == b.columns
    for name in a.columns:
        assert a[name].dtype == b[name].dtype
        np.testing.assert_array_equal(a[name], b[name])


class TestTableBytes:
    def test_round_trip(self):
        t = sample_table()
        assert_tables_equal(t, table_from_bytes(table_to_bytes(t)))

    def test_empty_table(self):
        t = Table()
        back = table_from_bytes(table_to_bytes(t))
        assert back.columns == []

    def test_zero_row_table(self):
        t = Table({"x": np.array([], dtype=np.int64), "s": np.array([], dtype="U4")})
        back = table_from_bytes(table_to_bytes(t))
        assert back.columns == ["x", "s"]
        assert back.num_rows == 0

    def test_deterministic(self):
        assert table_to_bytes(sample_table()) == table_to_bytes(sample_table())

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            table_from_bytes(b"XXXX" + table_to_bytes(sample_table())[4:])

    def test_truncation_rejected(self):
        blob = table_to_bytes(sample_table())
        with pytest.raises(ValueError):
            table_from_bytes(blob[:-3])


class TestPayloadCodec:
    def test_nested_round_trip(self):
        payload = {
            "text": "Table X",
            "table": sample_table(),
            "curves": {("Venus", "gpu"): (np.arange(4), np.linspace(0, 1, 4))},
            "scalar": 3.25,
        }
        back = loads_payload(dumps_payload(payload))
        assert back["text"] == payload["text"]
        assert back["scalar"] == payload["scalar"]
        assert_tables_equal(back["table"], payload["table"])
        xs, ys = back["curves"][("Venus", "gpu")]
        np.testing.assert_array_equal(xs, np.arange(4))
        np.testing.assert_array_equal(ys, np.linspace(0, 1, 4))

    def test_deterministic_bytes(self):
        payload = {"table": sample_table(), "arr": np.arange(10.0)}
        again = {"table": sample_table(), "arr": np.arange(10.0)}
        assert dumps_payload(payload) == dumps_payload(again)


class TestKeying:
    def test_parameter_change_busts_key(self):
        base = ArtifactCache.key_for("fig1", {"scale": 0.1}, "fp")
        assert ArtifactCache.key_for("fig1", {"scale": 0.2}, "fp") != base
        assert ArtifactCache.key_for("fig1", {"scale": 0.1}, "fp") == base

    def test_param_order_irrelevant(self):
        assert ArtifactCache.key_for(
            "fig1", {"a": 1, "b": 2}, "fp"
        ) == ArtifactCache.key_for("fig1", {"b": 2, "a": 1}, "fp")

    def test_fingerprint_change_busts_key(self):
        assert ArtifactCache.key_for("fig1", {}, "fp1") != ArtifactCache.key_for(
            "fig1", {}, "fp2"
        )

    def test_experiment_id_in_key(self):
        assert ArtifactCache.key_for("fig1", {}, "fp") != ArtifactCache.key_for(
            "fig2", {}, "fp"
        )


class TestCodeFingerprint:
    def test_stable_and_sensitive(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        (pkg / "b.py").write_text("y = 2\n")
        fp1 = code_fingerprint(pkg, refresh=True)
        assert code_fingerprint(pkg) == fp1  # memoized + stable
        (pkg / "a.py").write_text("x = 999\n")
        fp2 = code_fingerprint(pkg, refresh=True)
        assert fp2 != fp1

    def test_new_file_changes_fingerprint(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        fp1 = code_fingerprint(pkg, refresh=True)
        (pkg / "new.py").write_text("z = 3\n")
        assert code_fingerprint(pkg, refresh=True) != fp1

    def test_repro_tree_fingerprint_is_memoized(self):
        assert code_fingerprint() == code_fingerprint()


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for("t", {}, "fp")
        assert cache.load(key) is None
        payload = {"table": sample_table(), "text": "hi"}
        cache.store(key, payload, exp_id="t", fingerprint="fp")
        back = cache.load(key)
        assert back["text"] == "hi"
        assert_tables_equal(back["table"], payload["table"])
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_cached_bytes_identical_to_fresh_serialization(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        payload = {"table": sample_table(), "arr": np.arange(5.0), "text": "x"}
        key = ArtifactCache.key_for("t", {}, "fp")
        cache.store(key, payload)
        assert cache.load_bytes(key) == dumps_payload(payload)

    def test_corrupted_artifact_falls_back_to_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for("t", {}, "fp")
        path = cache.store(key, {"text": "x", "table": sample_table()})
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte: checksum must catch it
        path.write_bytes(bytes(blob))
        assert cache.load(key) is None
        assert cache.stats.corrupted == 1
        # recompute-and-overwrite restores the artifact
        cache.store(key, {"text": "x", "table": sample_table()})
        assert cache.load(key)["text"] == "x"

    def test_truncated_artifact_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for("t", {}, "fp")
        path = cache.store(key, {"text": "x"})
        path.write_bytes(path.read_bytes()[:-10])
        assert cache.load(key) is None

    def test_garbage_artifact_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for("t", {}, "fp")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an artifact at all")
        assert cache.load(key) is None
        assert not cache.contains(key)

    def test_contains_and_metadata(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for("fig1", {"p": 1}, "fp")
        assert not cache.contains(key)
        cache.store(key, {"text": "x"}, exp_id="fig1", params={"p": 1}, fingerprint="fp")
        assert cache.contains(key)
        meta = cache.metadata(key)
        assert meta["exp_id"] == "fig1"
        assert meta["params"] == {"p": 1}
        assert meta["fingerprint"] == "fp"


class TestMemo:
    def test_caches_and_counts_calls(self):
        calls = []

        @memo
        def f(x, y=10):
            calls.append((x, y))
            return x + y

        assert f(1) == 11
        assert f(1) == 11
        assert f(1, 10) == 11  # default folded into the key
        assert f(x=1) == 11
        assert calls == [(1, 10)]

    def test_warm_installs_value(self):
        @memo
        def f(x):
            raise AssertionError("must not be called")

        f.warm((5,), "primed")
        assert f(5) == "primed"
        assert f.is_cached(5)
        f.cache_clear()
        assert not f.is_cached(5)
