"""Tests for cluster state accounting and consolidated placement."""

import numpy as np
import pytest

from repro.sim import ClusterState, VCState, can_place, consolidate_place
from repro.traces import ClusterSpec, VCSpec


@pytest.fixture
def vc():
    return VCState("vcA", node_ids=np.arange(4), gpus_per_node=8)


@pytest.fixture
def spec():
    return ClusterSpec(
        name="T",
        gpus_per_node=8,
        vcs=(
            VCSpec("vcA", num_nodes=4, gpus_per_node=8),
            VCSpec("vcB", num_nodes=2, gpus_per_node=8),
        ),
    )


class TestVCState:
    def test_initial(self, vc):
        assert vc.total_gpus == 32
        assert vc.free_gpus == 32
        assert vc.busy_gpus == 0

    def test_take_release_roundtrip(self, vc):
        alloc = vc.take(np.array([0, 1]), np.array([8, 4]))
        assert vc.free_gpus == 20
        assert alloc.total_gpus == 12
        vc.release(alloc)
        assert vc.free_gpus == 32

    def test_overallocation_raises(self, vc):
        vc.take(np.array([0]), np.array([8]))
        with pytest.raises(RuntimeError, match="over-allocation"):
            vc.take(np.array([0]), np.array([1]))

    def test_double_free_raises(self, vc):
        alloc = vc.take(np.array([0]), np.array([4]))
        vc.release(alloc)
        with pytest.raises(RuntimeError, match="double free"):
            vc.release(alloc)


class TestClusterState:
    def test_global_node_index_space(self, spec):
        state = ClusterState(spec)
        a = state.vc("vcA")
        b = state.vc("vcB")
        assert set(a.node_ids) & set(b.node_ids) == set()
        assert state.num_nodes == 6
        assert state.total_gpus == 48

    def test_unknown_vc(self, spec):
        with pytest.raises(KeyError):
            ClusterState(spec).vc("nope")

    def test_utilization(self, spec):
        state = ClusterState(spec)
        assert state.utilization() == 0.0
        state.vc("vcA").take(np.array([0]), np.array([8]))
        assert state.utilization() == pytest.approx(8 / 48)


class TestConsolidatePlacement:
    def test_small_job_best_fit(self, vc):
        vc.take(np.array([0]), np.array([6]))  # node 0 has 2 free
        placed = consolidate_place(vc, 2)
        nodes, gpus = placed
        assert nodes.tolist() == [0]  # best fit picks the tightest node
        assert gpus.tolist() == [2]

    def test_whole_node_job(self, vc):
        placed = consolidate_place(vc, 8)
        nodes, gpus = placed
        assert len(nodes) == 1 and gpus.tolist() == [8]

    def test_multi_node_job(self, vc):
        placed = consolidate_place(vc, 24)
        nodes, gpus = placed
        assert len(nodes) == 3
        assert gpus.sum() == 24

    def test_multi_node_with_remainder(self, vc):
        placed = consolidate_place(vc, 12)
        nodes, gpus = placed
        assert sorted(gpus.tolist()) == [4, 8]

    def test_requires_fully_free_nodes(self, vc):
        """A 16-GPU job needs two nodes with 8 idle GPUs (§4.2.2)."""
        for i in range(4):
            vc.take(np.array([i]), np.array([1]))  # 7 free everywhere
        assert consolidate_place(vc, 16) is None
        assert can_place(vc, 7)

    def test_fragmentation_blocks(self, vc):
        vc.take(np.array([0, 1, 2, 3]), np.array([4, 4, 4, 4]))
        # 16 free GPUs total but no node has more than 4 free.
        assert consolidate_place(vc, 8) is None
        assert consolidate_place(vc, 4) is not None

    def test_zero_gpus_invalid(self, vc):
        with pytest.raises(ValueError):
            consolidate_place(vc, 0)

    def test_remainder_excludes_full_nodes(self, vc):
        """The remainder may not land on a node already used fully."""
        placed = consolidate_place(vc, 9)
        nodes, gpus = placed
        assert len(set(nodes.tolist())) == len(nodes)
        assert sorted(gpus.tolist()) == [1, 8]

    def test_conservation_property(self, vc):
        """Allocating then releasing any feasible series is lossless."""
        rng = np.random.default_rng(0)
        allocations = []
        for _ in range(50):
            g = int(rng.integers(1, 20))
            placed = consolidate_place(vc, g)
            if placed is not None:
                allocations.append(vc.take(*placed))
            elif allocations:
                vc.release(allocations.pop(rng.integers(len(allocations))))
        for a in allocations:
            vc.release(a)
        assert vc.free_gpus == vc.total_gpus
