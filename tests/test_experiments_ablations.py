"""Unit tests for the ablation helpers (no simulator replays).

The exhibit-level ablation behavior is exercised by the benchmark suite
(``benchmarks/test_bench_ablations.py``); here we pin down the pure
logic those exhibits parameterize — most importantly the DRS forecast
re-alignment that ``DRS_H`` drives.
"""

import numpy as np
import pytest

from repro.experiments import ablations
from repro.experiments.ablations import DRS_H, shift_forecast


class TestDrsConstant:
    def test_value_and_placement(self):
        """DRS_H is the 3-hour lookahead in 10-minute bins, defined at
        module scope *above* its uses (the original definition sat below
        ``exp_ablation_buffer`` and resolved only via late binding)."""
        assert DRS_H == 18
        src = open(ablations.__file__).read()
        assert src.index("DRS_H = ") < src.index("def exp_ablation_buffer")


class TestShiftForecast:
    def test_alignment(self):
        fc = np.arange(10.0)
        out = shift_forecast(fc, 3)
        np.testing.assert_array_equal(out[:7], fc[3:])
        np.testing.assert_array_equal(out[7:], np.full(3, fc[-1]))

    def test_length_preserved(self):
        for h in (0, 1, 5, 9, 10, 25):
            assert shift_forecast(np.arange(10.0), h).size == 10

    def test_zero_shift_is_identity_copy(self):
        fc = np.arange(5.0)
        out = shift_forecast(fc, 0)
        np.testing.assert_array_equal(out, fc)
        out[0] = 99.0
        assert fc[0] == 0.0  # caller's array untouched

    def test_shift_beyond_window_degenerates_to_constant(self):
        out = shift_forecast(np.arange(4.0), 18)
        np.testing.assert_array_equal(out, np.full(4, 3.0))

    def test_empty_forecast(self):
        assert shift_forecast(np.empty(0), DRS_H).size == 0

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            shift_forecast(np.arange(4.0), -1)

    def test_drs_h_parameterization_matches_inline_form(self):
        """The helper must reproduce the exhibit's original inline
        expression for the in-range case it was extracted from."""
        fc = np.linspace(5.0, 8.0, 50)
        inline = np.concatenate([fc[DRS_H:], np.full(DRS_H, fc[-1])])
        np.testing.assert_array_equal(shift_forecast(fc, DRS_H), inline)
