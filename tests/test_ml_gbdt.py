"""Tests for the GBDT regressor."""

import numpy as np
import pytest

from repro.ml import GBDTParams, GBDTRegressor


@pytest.fixture(scope="module")
def friedman():
    """Nonlinear regression problem (Friedman #1 style)."""
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(1200, 5))
    y = (
        10 * np.sin(np.pi * X[:, 0] * X[:, 1])
        + 20 * (X[:, 2] - 0.5) ** 2
        + 10 * X[:, 3]
        + 5 * X[:, 4]
        + rng.normal(0, 0.5, 1200)
    )
    return X, y


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            GBDTParams(n_estimators=0)
        with pytest.raises(ValueError):
            GBDTParams(learning_rate=0.0)
        with pytest.raises(ValueError):
            GBDTParams(subsample=1.5)


class TestFit:
    def test_training_loss_decreases(self, friedman):
        X, y = friedman
        model = GBDTRegressor(GBDTParams(n_estimators=40, max_depth=4)).fit(X, y)
        losses = model.staged_mse()
        assert losses[-1] < losses[0] * 0.2
        # monotone non-increasing (squared loss + full data per stage)
        assert all(b <= a + 1e-9 for a, b in zip(losses, losses[1:]))

    def test_beats_mean_baseline(self, friedman):
        X, y = friedman
        train, test = X[:800], X[800:]
        yt, yv = y[:800], y[800:]
        model = GBDTRegressor(GBDTParams(n_estimators=120, max_depth=4)).fit(train, yt)
        pred = model.predict(test)
        mse_model = np.mean((pred - yv) ** 2)
        mse_mean = np.mean((yt.mean() - yv) ** 2)
        assert mse_model < 0.15 * mse_mean

    def test_subsample_still_learns(self, friedman):
        X, y = friedman
        model = GBDTRegressor(
            GBDTParams(n_estimators=60, subsample=0.5, random_state=1)
        ).fit(X, y)
        pred = model.predict(X)
        assert np.mean((pred - y) ** 2) < 0.3 * np.var(y)

    def test_deterministic_given_seed(self, friedman):
        X, y = friedman
        p = GBDTParams(n_estimators=10, subsample=0.7, random_state=42)
        m1 = GBDTRegressor(p).fit(X, y)
        m2 = GBDTRegressor(p).fit(X, y)
        np.testing.assert_array_equal(m1.predict(X), m2.predict(X))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            GBDTRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            GBDTRegressor().fit(np.zeros((3, 2)), np.zeros(4))


class TestEarlyStopping:
    def test_early_stop_halts(self, friedman):
        X, y = friedman
        model = GBDTRegressor(
            GBDTParams(n_estimators=500, early_stopping_rounds=5, max_depth=2)
        ).fit(X[:600], y[:600], eval_set=(X[600:], y[600:]))
        assert len(model.trees_) < 500
        assert model.best_iteration_ is not None

    def test_predict_uses_best_iteration(self, friedman):
        X, y = friedman
        model = GBDTRegressor(
            GBDTParams(n_estimators=200, early_stopping_rounds=10, max_depth=2)
        ).fit(X[:600], y[:600], eval_set=(X[600:], y[600:]))
        best = model.best_iteration_
        full = model.predict(X[600:], n_trees=len(model.trees_))
        best_pred = model.predict(X[600:])
        trunc = model.predict(X[600:], n_trees=best + 1)
        np.testing.assert_array_equal(best_pred, trunc)
        # best-iteration predictions shouldn't be much worse than full
        yv = y[600:]
        assert np.mean((best_pred - yv) ** 2) <= np.mean((full - yv) ** 2) + 1e-6


class TestPredict:
    def test_predict_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GBDTRegressor().predict(np.zeros((1, 2)))

    def test_predict_1d_input(self, friedman):
        X, y = friedman
        model = GBDTRegressor(GBDTParams(n_estimators=5)).fit(X, y)
        out = model.predict(X[0])
        assert out.shape == (1,)

    def test_feature_importances(self, friedman):
        X, y = friedman
        model = GBDTRegressor(GBDTParams(n_estimators=30, max_depth=4)).fit(X, y)
        imp = model.feature_importances()
        assert imp.shape == (5,)
        assert imp.sum() == pytest.approx(1.0)
        # features 0,1,3 carry the most signal in Friedman #1
        assert imp[:2].sum() + imp[3] > imp[4]

    def test_importances_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GBDTRegressor().feature_importances()

    def test_importances_respect_early_stopping_truncation(self, friedman):
        """Regression: importances summed gains over *all* trees even when
        early stopping truncated prediction to ``best_iteration_`` — they
        must describe the ensemble ``predict`` actually uses."""
        X, y = friedman
        model = GBDTRegressor(
            GBDTParams(n_estimators=500, early_stopping_rounds=5, max_depth=2)
        ).fit(X[:600], y[:600], eval_set=(X[600:], y[600:]))
        best = model.best_iteration_
        assert best is not None and best + 1 < len(model.trees_)
        imp = model.feature_importances()
        used = np.zeros(5)
        for tree in model.trees_[: best + 1]:
            used += tree.feature_gains()
        np.testing.assert_array_equal(imp, used / used.sum())
        over = np.zeros(5)
        for tree in model.trees_:
            over += tree.feature_gains()
        assert not np.array_equal(imp, over / over.sum())


class TestModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            GBDTRegressor(mode="turbo")

    @pytest.mark.parametrize(
        "params",
        [
            GBDTParams(n_estimators=15, max_depth=4),
            GBDTParams(n_estimators=20, max_depth=6, subsample=0.6, random_state=3),
        ],
        ids=["full-rows", "subsampled"],
    )
    def test_fast_is_byte_identical_to_reference(self, friedman, params):
        X, y = friedman
        fast = GBDTRegressor(params, mode="fast").fit(X, y)
        ref = GBDTRegressor(params, mode="reference").fit(X, y)
        np.testing.assert_array_equal(fast.predict(X), ref.predict(X))
        assert fast.staged_mse() == ref.staged_mse()
        np.testing.assert_array_equal(
            fast.feature_importances(), ref.feature_importances()
        )

    def test_early_stopping_parity(self, friedman):
        X, y = friedman
        p = GBDTParams(n_estimators=100, early_stopping_rounds=5, max_depth=3)
        fast = GBDTRegressor(p, mode="fast").fit(
            X[:600], y[:600], eval_set=(X[600:], y[600:])
        )
        ref = GBDTRegressor(p, mode="reference").fit(
            X[:600], y[:600], eval_set=(X[600:], y[600:])
        )
        assert fast.best_iteration_ == ref.best_iteration_
        np.testing.assert_array_equal(fast.predict(X), ref.predict(X))
