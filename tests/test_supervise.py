"""Supervised worker pool: retries, timeouts, checkpoints, fault modes."""

import os
import time

import pytest

from repro.framework import (
    FaultPlan,
    FaultSpec,
    Supervision,
    SupervisionLog,
    WorkerError,
    WorkerFailure,
    fork_available,
    run_supervised,
)
from repro.framework.supervise import backoff_delay

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires os.fork"
)

FAST = Supervision(
    timeout_s=10.0, max_retries=2, backoff_base_s=0.001,
    backoff_cap_s=0.01, poll_interval_s=0.005,
)


def _double(x):
    return 2 * x


def _boom(x):
    if x == 3:
        raise ValueError(f"boom on {x}")
    return x


def _ctx_task(x, ctx):
    """Checkpoint-aware task: resumes from a saved partial sum."""
    base = ctx.checkpoint or 0
    ctx.save(base + x)
    ctx.maybe_fault(0)
    return base + 10 * x


class TestSupervisionKnobs:
    def test_validation(self):
        with pytest.raises(ValueError, match="timeout_s"):
            Supervision(timeout_s=0)
        with pytest.raises(ValueError, match="heartbeat"):
            Supervision(heartbeat_timeout_s=-1)
        with pytest.raises(ValueError, match="max_retries"):
            Supervision(max_retries=-1)
        with pytest.raises(ValueError, match="poll_interval"):
            Supervision(poll_interval_s=0)

    def test_backoff_deterministic_and_bounded(self):
        sup = Supervision(backoff_base_s=0.1, backoff_cap_s=1.0)
        assert backoff_delay("x", 0, sup) == 0.0
        d1 = backoff_delay("x", 1, sup)
        d2 = backoff_delay("x", 2, sup)
        # same inputs, same jitter — no wall clock involved
        assert d1 == backoff_delay("x", 1, sup)
        assert d1 != backoff_delay("y", 1, sup)
        assert 0.1 <= d1 <= 0.2
        assert 0.2 <= d2 <= 0.4
        assert backoff_delay("x", 30, sup) == 1.0


class TestHappyPath:
    def test_matches_plain_map(self):
        assert run_supervised(_double, [1, 2, 3], supervision=FAST) == [2, 4, 6]

    def test_jobs_many(self):
        out = run_supervised(_double, list(range(8)), jobs=4, supervision=FAST)
        assert out == [2 * i for i in range(8)]

    def test_empty_items(self):
        assert run_supervised(_double, [], supervision=FAST) == []


class TestErrorPaths:
    def test_remote_traceback_and_item_preserved(self):
        log = SupervisionLog()
        with pytest.raises(WorkerError) as excinfo:
            run_supervised(_boom, [1, 2, 3, 4], supervision=FAST, log=log)
        err = excinfo.value
        assert err.item == "2"  # label of the failing item (index)
        assert "boom on 3" in str(err)
        assert err.remote_traceback is None or "boom on 3" in err.remote_traceback
        # error attempts exhausted the retry budget
        assert err.attempts == FAST.max_retries + 1

    def test_failures_isolated_per_item(self):
        """strict=False: siblings' results survive a dead item."""
        out = run_supervised(
            _boom, [1, 2, 3, 4], supervision=FAST, strict=False
        )
        assert out[0] == 1 and out[1] == 2 and out[3] == 4
        assert isinstance(out[2], WorkerFailure)
        assert out[2].outcome == "error"

    def test_strict_error_still_carries_all_results(self):
        with pytest.raises(WorkerError) as excinfo:
            run_supervised(_boom, [3, 1], supervision=FAST)
        assert excinfo.value.results[1] == 1

    def test_labels_length_checked(self):
        with pytest.raises(ValueError, match="labels"):
            run_supervised(_double, [1, 2], labels=["only-one"], supervision=FAST)


class TestInjectedFaults:
    def test_transient_exception_retried_to_success(self):
        # exception fires only on attempt 0; attempt 1 succeeds
        plan = FaultPlan(faults=(FaultSpec(key="0", kind="exception", at=0),))
        log = SupervisionLog()
        out = run_supervised(
            _ctx_task, [5], supervision=FAST, fault_plan=plan,
            with_context=True, log=log,
        )
        assert out == [55]  # checkpoint (5) + 10*5 on the retry
        assert [(lbl, a, o) for lbl, a, o in log.events] == [
            ("0", 0, "error"), ("0", 1, "ok"),
        ]
        assert log.retries() == 1

    def test_corrupt_payload_retried(self):
        plan = FaultPlan(faults=(FaultSpec(key="0", kind="corrupt"),))
        log = SupervisionLog()
        out = run_supervised(
            _double, [4], supervision=FAST, fault_plan=plan, log=log
        )
        assert out == [8]
        assert log.events[0] == ("0", 0, "corrupt")
        assert log.events[-1] == ("0", 1, "ok")

    def test_validate_hook_marks_corrupt(self):
        def reject_odd(result):
            if result % 2:
                raise ValueError("odd payload")

        log = SupervisionLog()
        with pytest.raises(WorkerError, match="corrupt"):
            run_supervised(
                lambda x: x, [3], supervision=FAST, validate=reject_odd, log=log
            )
        assert all(o in ("corrupt", "failed") for _, _, o in log.events)

    def test_exhausted_retries_terminal(self):
        plan = FaultPlan(
            faults=tuple(
                FaultSpec(key="0", kind="exception", attempt=a, at=0)
                for a in range(FAST.max_retries + 1)
            )
        )
        log = SupervisionLog()
        with pytest.raises(WorkerError, match="failed after 3 attempt"):
            run_supervised(
                _ctx_task, [1], supervision=FAST, fault_plan=plan,
                with_context=True, log=log,
            )
        assert log.events[-1][2] == "failed"


@needs_fork
class TestForkedCrashes:
    def test_sigkill_crash_recovers_from_checkpoint(self):
        plan = FaultPlan(faults=(FaultSpec(key="a", kind="crash", at=0),))
        log = SupervisionLog()
        out = run_supervised(
            _ctx_task, [2], labels=["a"], supervision=FAST,
            fault_plan=plan, with_context=True, log=log,
        )
        # attempt 0 saved checkpoint 2 then died; attempt 1 resumed: 2 + 20
        assert out == [22]
        assert log.events == [("a", 0, "crash"), ("a", 1, "ok")]

    def test_hang_killed_by_timeout(self):
        plan = FaultPlan(faults=(FaultSpec(key="0", kind="hang", at=0),))
        sup = Supervision(
            timeout_s=0.3, max_retries=1, backoff_base_s=0.001,
            backoff_cap_s=0.01, poll_interval_s=0.01,
        )
        log = SupervisionLog()
        t0 = time.monotonic()
        out = run_supervised(
            _ctx_task, [1], supervision=sup, fault_plan=plan,
            with_context=True, log=log,
        )
        assert time.monotonic() - t0 < 5.0
        assert out == [11]
        assert log.events[0][2] == "timeout"

    def test_heartbeat_timeout_enforced(self):
        def silent_sleep(x):
            time.sleep(1.0)
            return x

        sup = Supervision(
            timeout_s=30.0, heartbeat_timeout_s=0.2, max_retries=0,
            backoff_base_s=0.001, poll_interval_s=0.01,
        )
        t0 = time.monotonic()
        with pytest.raises(WorkerError, match="timeout"):
            run_supervised(silent_sleep, [1], supervision=sup)
        assert time.monotonic() - t0 < 5.0


@needs_fork
def _stepper(x, ctx):
    for progress in range(3):
        ctx.maybe_fault(progress)
    return x + 1


class TestMultiFaultAttempts:
    def test_context_fires_every_planned_fault(self):
        """One attempt may stack several faults: the startup one fires
        in fire_startup_faults, the indexed one at its progress."""
        from repro.framework import TransientWorkerFault, WorkerContext

        plan = FaultPlan(faults=(
            FaultSpec(key="m", kind="slow_start", delay_s=0.0),
            FaultSpec(key="m", kind="exception", at=2),
        ))
        ctx = WorkerContext("m", 0, faults=plan.process_faults_for("m", 0))
        assert len(ctx.faults) == 2
        ctx.fire_startup_faults()  # zero-delay slow_start returns
        ctx.maybe_fault(0)
        ctx.maybe_fault(1)
        with pytest.raises(TransientWorkerFault):
            ctx.maybe_fault(2)

    def test_multi_fault_plan_under_inprocess_fallback(self, monkeypatch):
        """A stacked plan drives the daemonic fallback through the same
        retry flow the forked supervisor takes."""
        import repro.framework.supervise as sup_mod

        monkeypatch.setattr(sup_mod, "fork_available", lambda: False)
        plan = FaultPlan(faults=(
            FaultSpec(key="s", kind="slow_start", delay_s=0.001),
            FaultSpec(key="s", kind="exception", at=1),
        ))
        log = SupervisionLog()
        out = run_supervised(
            _stepper, [5], labels=["s"], supervision=FAST,
            fault_plan=plan, with_context=True, log=log,
        )
        assert out == [6]
        assert [(lbl, a, o) for lbl, a, o in log.events] == [
            ("s", 0, "error"), ("s", 1, "ok"),
        ]


class TestModeParity:
    def test_inprocess_fallback_same_outcomes(self, monkeypatch):
        """The daemonic-pool fallback replays the same outcome strings
        and checkpoint flow as real forked supervision."""
        plan = FaultPlan(faults=(FaultSpec(key="a", kind="crash", at=0),))

        forked_log = SupervisionLog()
        forked = run_supervised(
            _ctx_task, [2], labels=["a"], supervision=FAST,
            fault_plan=plan, with_context=True, log=forked_log,
        )

        import repro.framework.supervise as sup_mod
        monkeypatch.setattr(sup_mod, "fork_available", lambda: False)
        inproc_log = SupervisionLog()
        inproc = run_supervised(
            _ctx_task, [2], labels=["a"], supervision=FAST,
            fault_plan=plan, with_context=True, log=inproc_log,
        )
        assert forked == inproc
        assert forked_log.events == inproc_log.events
